"""Technology-independent logic graphs.

A :class:`LogicGraph` captures the *design-dependent* information of the
paper's Figure 4: the functionality of a design, independent of any
technology node.  The same logic graph mapped onto two different libraries
produces two different gate-level netlists that share their functionality —
exactly the invariance the paper's design-dependent features must learn.

Nodes are generic operators from :data:`repro.techlib.GENERIC_FUNCTIONS`
(plus ``INPUT`` and register nodes).  Registers (``DFF``) cut combinational
cycles; the combinational portion of the graph must be acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Number of data inputs each generic operator expects.
OP_ARITY = {
    "INPUT": 0,
    "CONST0": 0,
    "CONST1": 0,
    "INV": 1,
    "BUF": 1,
    "NAND2": 2,
    "NAND3": 3,
    "NOR2": 2,
    "NOR3": 3,
    "AND2": 2,
    "OR2": 2,
    "XOR2": 2,
    "XNOR2": 2,
    "MUX2": 3,
    "AOI21": 3,
    "OAI21": 3,
    "DFF": 1,
}


@dataclass
class LogicNode:
    """A node in a logic graph.

    Attributes
    ----------
    index:
        Position in ``LogicGraph.nodes``.
    op:
        Generic operator name (key of :data:`OP_ARITY`).
    fanin:
        Indices of this node's input nodes, in operator-argument order
        (for ``MUX2``: select, then the two data inputs).
    name:
        Optional human-readable label (ports get one).
    """

    index: int
    op: str
    fanin: Tuple[int, ...]
    name: Optional[str] = None

    @property
    def is_register(self) -> bool:
        return self.op == "DFF"

    @property
    def is_input(self) -> bool:
        return self.op == "INPUT"


class LogicGraph:
    """A mutable DAG of generic logic operators.

    The graph owns its nodes; construction helpers (:meth:`add_input`,
    :meth:`add_gate`, :meth:`add_register`, :meth:`mark_output`) enforce
    arity and acyclicity by only permitting references to existing nodes.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: List[LogicNode] = []
        self.inputs: List[int] = []
        self.outputs: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------
    def _add(self, op: str, fanin: Sequence[int],
             name: Optional[str] = None) -> int:
        arity = OP_ARITY.get(op)
        if arity is None:
            raise ValueError(f"unknown operator {op!r}")
        if len(fanin) != arity:
            raise ValueError(
                f"{op} expects {arity} inputs, got {len(fanin)}"
            )
        for src in fanin:
            if not 0 <= src < len(self.nodes):
                raise ValueError(f"fanin {src} does not exist yet")
        node = LogicNode(len(self.nodes), op, tuple(fanin), name)
        self.nodes.append(node)
        return node.index

    def add_input(self, name: str) -> int:
        """Add a primary input and return its node index."""
        idx = self._add("INPUT", (), name)
        self.inputs.append(idx)
        return idx

    def add_gate(self, op: str, fanin: Sequence[int]) -> int:
        """Add a combinational gate and return its node index."""
        if op in ("INPUT", "DFF"):
            raise ValueError(f"use the dedicated helper for {op}")
        return self._add(op, fanin)

    def add_register(self, data: int) -> int:
        """Add a D flip-flop fed by ``data`` and return its node index."""
        return self._add("DFF", (data,))

    def add_register_placeholder(self) -> int:
        """Add a D flip-flop whose data input is connected later.

        Placeholders enable sequential feedback (FSMs, shift registers,
        counters): declare the register, use its output in combinational
        logic, then close the loop with :meth:`connect_register`.  The
        combinational portion of the graph stays acyclic because registers
        cut timing paths.
        """
        node = LogicNode(len(self.nodes), "DFF", ())
        self.nodes.append(node)
        return node.index

    def connect_register(self, register: int, data: int) -> None:
        """Bind a placeholder register's data input to ``data``."""
        node = self.nodes[register]
        if not node.is_register:
            raise ValueError(f"node {register} is not a register")
        if node.fanin:
            raise ValueError(f"register {register} is already connected")
        if not 0 <= data < len(self.nodes):
            raise ValueError(f"data node {data} does not exist")
        node.fanin = (data,)

    def mark_output(self, node: int, name: str) -> None:
        """Declare ``node`` as a primary output called ``name``."""
        if not 0 <= node < len(self.nodes):
            raise ValueError(f"node {node} does not exist")
        self.outputs.append((node, name))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def registers(self) -> List[int]:
        """Indices of all register nodes."""
        return [n.index for n in self.nodes if n.is_register]

    @property
    def num_gates(self) -> int:
        """Number of combinational gate nodes (excludes inputs/registers)."""
        return sum(1 for n in self.nodes
                   if not n.is_input and not n.is_register
                   and n.op not in ("CONST0", "CONST1"))

    def fanout_counts(self) -> List[int]:
        """Fanout (number of readers) of every node."""
        counts = [0] * len(self.nodes)
        for node in self.nodes:
            for src in node.fanin:
                counts[src] += 1
        for node_idx, _ in self.outputs:
            counts[node_idx] += 1
        return counts

    def depth(self) -> int:
        """Longest combinational path length in gates.

        Registers and inputs restart the count at zero (they are timing
        startpoints); the returned value is the maximum over all nodes.
        """
        depths = [0] * len(self.nodes)
        for node in self.nodes:  # nodes are in topological order
            if node.is_input or node.is_register:
                depths[node.index] = 0
            else:
                depths[node.index] = 1 + max(
                    (depths[s] for s in node.fanin), default=0
                )
        return max(depths, default=0)

    def validate(self) -> None:
        """Raise ``ValueError`` if the graph is malformed.

        Combinational fanin references must point backwards (construction
        order is then a topological order of the combinational graph,
        which guarantees acyclicity).  Registers may reference any node —
        sequential feedback is legal — but every register must have its
        data input connected.
        """
        for node in self.nodes:
            if node.is_register:
                if len(node.fanin) != 1:
                    raise ValueError(
                        f"register {node.index} has unconnected data input"
                    )
                continue
            for src in node.fanin:
                if src >= node.index:
                    raise ValueError(
                        f"node {node.index} has forward fanin {src}"
                    )
        for node_idx, name in self.outputs:
            if not 0 <= node_idx < len(self.nodes):
                raise ValueError(f"output {name} points to missing node")
        if not self.inputs:
            raise ValueError("graph has no primary inputs")

    def stats(self) -> Dict[str, int]:
        """Structural summary: node/gate/register/IO counts and depth."""
        return {
            "nodes": len(self.nodes),
            "gates": self.num_gates,
            "registers": len(self.registers),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "depth": self.depth(),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (f"LogicGraph({self.name}, gates={s['gates']}, "
                f"regs={s['registers']}, depth={s['depth']})")
