"""Technology mapping: lowering a logic graph onto a cell library.

This stands in for Cadence Genus in the paper's data-generation flow.  The
mapper walks the logic graph in topological order and instantiates library
cells; generic functions the library does not provide are decomposed
through rewrite templates (e.g. ``AND2 -> INV(NAND2)`` on the 7nm library,
``NAND3 -> NAND2(AND2(a, b), c)`` on the 130nm one).  Because the two
libraries provide *different* function subsets, mapping the same design to
the two nodes yields structurally different netlists with identical
functionality — the precise node/design entanglement the paper targets.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..techlib import TechLibrary
from .core import Net, Netlist
from .logic import LogicGraph

#: Functions every library must provide for the rewrite system to terminate.
BASE_FUNCTIONS = ("INV", "NAND2", "NOR2", "DFF")


class TechMapper:
    """Maps :class:`LogicGraph` objects onto a :class:`TechLibrary`.

    Parameters
    ----------
    library:
        Target library.  Must provide :data:`BASE_FUNCTIONS`.
    fanout_drive_thresholds:
        ``(t1, t2)``; cells driving more than ``t1``/``t2`` sinks get the
        nearest x2/x4-class drive during the post-mapping sizing pass.
    """

    def __init__(self, library: TechLibrary,
                 fanout_drive_thresholds: tuple = (2, 5)) -> None:
        missing = [f for f in BASE_FUNCTIONS if not library.cells_for(f)]
        if missing:
            raise ValueError(
                f"{library.name} lacks base functions {missing}; "
                "the mapper cannot terminate without them"
            )
        self.library = library
        self.fanout_drive_thresholds = fanout_drive_thresholds
        self._decompositions = _build_decompositions()

    # ------------------------------------------------------------------
    def map(self, graph: LogicGraph) -> Netlist:
        """Lower ``graph`` to a gate-level netlist on this library."""
        graph.validate()
        netlist = Netlist(graph.name, self.library)

        clk_port = netlist.add_port("clk", "input")
        clk_net = netlist.add_net("clk", is_clock=True)
        netlist.connect(clk_net, clk_port)

        # Pass 1: inputs and registers get their signals up front, so that
        # combinational logic (and register feedback) can reference them.
        signal: Dict[int, Net] = {}
        dff_insts: Dict[int, object] = {}
        for node in graph.nodes:
            if node.is_input:
                port = netlist.add_port(node.name or f"in{node.index}",
                                        "input")
                net = netlist.add_net(f"n_{node.name or node.index}")
                netlist.connect(net, port)
                signal[node.index] = net
            elif node.is_register:
                dff = self.library.pick("DFF", 1.0)
                inst = netlist.add_cell(dff)
                netlist.connect(clk_net, inst.pins["CK"])
                q_net = netlist.add_net()
                netlist.connect(q_net, inst.pins["Q"])
                signal[node.index] = q_net
                dff_insts[node.index] = inst

        # Pass 2: combinational gates in construction (= topological) order.
        for node in graph.nodes:
            if node.is_input or node.is_register:
                continue
            fanin_nets = [signal[f] for f in node.fanin]
            signal[node.index] = self._emit(netlist, node.op, fanin_nets)

        # Pass 3: close register data inputs (may be feedback).
        for node in graph.nodes:
            if node.is_register:
                inst = dff_insts[node.index]
                netlist.connect(signal[node.fanin[0]], inst.pins["D"])

        for node_idx, name in graph.outputs:
            port = netlist.add_port(name, "output")
            netlist.connect(signal[node_idx], port)

        netlist.sweep_dangling()
        if not clk_net.sinks:
            # Purely combinational design: drop the unused clock tree.
            netlist.remove_port("clk")
            netlist.remove_net(clk_net)
        self._size_by_fanout(netlist)
        netlist.validate()
        return netlist

    # ------------------------------------------------------------------
    def _emit(self, netlist: Netlist, op: str,
              fanin: List[Net]) -> Net:
        """Instantiate ``op`` over nets ``fanin``, decomposing if needed."""
        if self.library.cells_for(op):
            cell = self.library.pick(op, 1.0)
            inst = netlist.add_cell(cell)
            for pin_name, net in zip(cell.input_pins, fanin):
                netlist.connect(net, inst.pins[pin_name])
            out = netlist.add_net()
            netlist.connect(out, inst.pins[cell.output_pin])
            return out
        template = self._decompositions.get(op)
        if template is None:
            raise KeyError(
                f"no cell and no decomposition for {op} in "
                f"{self.library.name}"
            )
        emit = lambda sub_op, sub_fanin: self._emit(netlist, sub_op, sub_fanin)
        return template(emit, *fanin)

    def _size_by_fanout(self, netlist: Netlist) -> None:
        """Assign initial drive strengths from each cell's fanout."""
        t1, t2 = self.fanout_drive_thresholds
        for inst in netlist.cells.values():
            net = inst.output_pin.net
            if net is None:
                continue
            fanout = net.fanout
            if fanout > t2:
                target = 4.0
            elif fanout > t1:
                target = 2.0
            else:
                continue
            replacement = self.library.pick(inst.ref.function, target)
            if replacement is not inst.ref:
                inst.ref = replacement


def _build_decompositions() -> Dict[str, Callable]:
    """Rewrite templates over the guaranteed base functions.

    Each template receives an ``emit(op, fanin_nets)`` callback plus the
    operand nets and returns the output net.  Templates may reference
    functions covered by *other* templates; recursion terminates because
    every chain bottoms out in :data:`BASE_FUNCTIONS`.
    """

    def and2(e, a, b):
        return e("INV", [e("NAND2", [a, b])])

    def or2(e, a, b):
        return e("INV", [e("NOR2", [a, b])])

    def nand3(e, a, b, c):
        return e("NAND2", [e("AND2", [a, b]), c])

    def nor3(e, a, b, c):
        return e("NOR2", [e("OR2", [a, b]), c])

    def xor2(e, a, b):
        nab = e("NAND2", [a, b])
        return e("NAND2", [e("NAND2", [a, nab]), e("NAND2", [b, nab])])

    def xnor2(e, a, b):
        return e("INV", [e("XOR2", [a, b])])

    def mux2(e, s, a, b):
        ns = e("INV", [s])
        return e("NAND2", [e("NAND2", [s, a]), e("NAND2", [ns, b])])

    def aoi21(e, a, b, c):
        return e("NOR2", [e("AND2", [a, b]), c])

    def oai21(e, a, b, c):
        return e("NAND2", [e("OR2", [a, b]), c])

    def buf(e, a):
        return e("INV", [e("INV", [a])])

    return {
        "AND2": and2,
        "OR2": or2,
        "NAND3": nand3,
        "NOR3": nor3,
        "XOR2": xor2,
        "XNOR2": xnor2,
        "MUX2": mux2,
        "AOI21": aoi21,
        "OAI21": oai21,
        "BUF": buf,
    }


def map_design(graph: LogicGraph, library: TechLibrary) -> Netlist:
    """Convenience wrapper: map ``graph`` onto ``library``."""
    return TechMapper(library).map(graph)
