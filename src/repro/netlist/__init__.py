"""Netlist substrate: logic graphs, gate-level netlists, benchmarks, mapping."""

from . import blocks
from .core import INPUT, OUTPUT, CellInst, Net, Netlist, Pin
from .designs import (
    DESIGN_GENERATORS,
    TEST_SPLIT,
    TRAIN_SPLIT,
    make_design,
)
from .logic import OP_ARITY, LogicGraph, LogicNode
from .mapping import TechMapper, map_design
from .simulate import (
    GraphSimulator,
    NetlistSimulator,
    equivalent_behaviour,
)

__all__ = [
    "CellInst",
    "DESIGN_GENERATORS",
    "GraphSimulator",
    "NetlistSimulator",
    "equivalent_behaviour",
    "INPUT",
    "LogicGraph",
    "LogicNode",
    "Net",
    "Netlist",
    "OP_ARITY",
    "OUTPUT",
    "Pin",
    "TechMapper",
    "TEST_SPLIT",
    "TRAIN_SPLIT",
    "blocks",
    "make_design",
    "map_design",
]
