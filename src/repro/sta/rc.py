"""RC trees and Elmore delay (the linear STA interconnect model).

The paper contrasts ML prediction against the classic linear RC model
(Elmore [1]); our signoff STA uses Elmore on the router's RC trees, and
the pre-route estimator uses it on star topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np


@dataclass
class RCNode:
    """One node of an RC tree.

    ``parent`` is the index of the upstream node (-1 for the root), ``res``
    the resistance of the wire segment from the parent (kOhm), and ``cap``
    the capacitance lumped at this node (pF).
    """

    index: int
    parent: int
    res: float
    cap: float


class RCTree:
    """A grounded RC tree rooted at a net's driver pin.

    Nodes must be added parent-before-child (the constructor of each node
    references an existing parent), which keeps traversals allocation-free.
    """

    def __init__(self) -> None:
        self.nodes: List[RCNode] = [RCNode(0, -1, 0.0, 0.0)]
        self.sink_node: Dict[int, int] = {}  # pin index -> tree node

    def add_node(self, parent: int, res: float, cap: float) -> int:
        """Append a node hanging from ``parent``; returns its index."""
        if not 0 <= parent < len(self.nodes):
            raise ValueError(f"parent {parent} does not exist")
        if res < 0 or cap < 0:
            raise ValueError("resistance and capacitance must be >= 0")
        node = RCNode(len(self.nodes), parent, res, cap)
        self.nodes.append(node)
        return node.index

    def attach_sink(self, pin_index: int, node: int, pin_cap: float) -> None:
        """Register a sink pin at ``node`` and lump its input cap there."""
        self.nodes[node].cap += pin_cap
        self.sink_node[pin_index] = node

    def add_root_cap(self, cap: float) -> None:
        self.nodes[0].cap += cap

    # ------------------------------------------------------------------
    def total_cap(self) -> float:
        """Total capacitance the driver sees (pF)."""
        return sum(n.cap for n in self.nodes)

    def downstream_caps(self) -> np.ndarray:
        """Capacitance hanging at-or-below every node."""
        down = np.array([n.cap for n in self.nodes])
        for node in reversed(self.nodes[1:]):
            down[node.parent] += down[node.index]
        return down

    def elmore_delays(self) -> np.ndarray:
        """Elmore delay from the root to every node (ns).

        ``delay(v) = sum over edges e on root->v path of R_e * C_down(e)``.
        """
        down = self.downstream_caps()
        delays = np.zeros(len(self.nodes))
        for node in self.nodes[1:]:
            delays[node.index] = delays[node.parent] + node.res * down[node.index]
        return delays

    def sink_delays(self) -> Dict[int, float]:
        """Elmore delay to every registered sink pin, keyed by pin index."""
        delays = self.elmore_delays()
        return {pin: float(delays[node])
                for pin, node in self.sink_node.items()}

    def slew_degradations(self) -> Dict[int, float]:
        """Per-sink slew degradation estimate (ns).

        Uses the standard approximation that the step response of an RC
        stage stretches the transition by ~ln(9) * Elmore of the stage.
        """
        ln9 = float(np.log(9.0))
        return {pin: ln9 * delay for pin, delay in self.sink_delays().items()}

    def __len__(self) -> int:
        return len(self.nodes)
