"""On-chip variation (OCV) and Monte-Carlo statistical STA.

Classic corner-based signoff multiplies arc delays by global derates;
statistical STA (the paper's reference [5]) instead samples per-cell
delay variation and reports arrival-time *distributions*.  Both are
provided here on top of the deterministic engine:

- :class:`DeratedParasitics` / :func:`run_ocv_sta` — early/late derates.
- :class:`MonteCarloSTA` — samples lognormal per-cell delay factors and
  re-runs the PERT engine, yielding per-endpoint quantiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..netlist import Netlist
from ..route.estimator import ParasiticsProvider
from .constraints import ClockConstraint
from .engine import STAEngine, TimingReport


class DeratedParasitics(ParasiticsProvider):
    """Wraps a parasitics provider, scaling every wire delay."""

    def __init__(self, inner: ParasiticsProvider, derate: float) -> None:
        if derate <= 0:
            raise ValueError("derate must be positive")
        self.inner = inner
        self.derate = derate

    def net_load(self, net):
        return self.inner.net_load(net)

    def wire_delay(self, net, sink):
        return self.derate * self.inner.wire_delay(net, sink)

    def slew_degradation(self, net, sink):
        return self.derate * self.inner.slew_degradation(net, sink)


def run_ocv_sta(netlist: Netlist, parasitics: ParasiticsProvider,
                clock: Optional[ClockConstraint] = None,
                late_derate: float = 1.1) -> TimingReport:
    """Signoff with a pessimistic late derate on interconnect."""
    derated = DeratedParasitics(parasitics, late_derate)
    return STAEngine(netlist, derated, clock).run()


@dataclass
class StatisticalReport:
    """Per-endpoint arrival-time statistics over MC samples."""

    samples: np.ndarray              # (S, K)
    endpoint_names: List[str]

    def quantile(self, q: float) -> np.ndarray:
        """Per-endpoint arrival-time quantile (e.g. 0.997 for 3 sigma)."""
        return np.quantile(self.samples, q, axis=0)

    def mean(self) -> np.ndarray:
        return self.samples.mean(axis=0)

    def std(self) -> np.ndarray:
        return self.samples.std(axis=0)

    def yield_at(self, period: float) -> float:
        """Fraction of samples where every endpoint meets ``period``."""
        worst = self.samples.max(axis=1)
        return float((worst <= period).mean())


class MonteCarloSTA:
    """Statistical STA by sampling global + wire delay variation.

    Each sample draws one lognormal *global* process factor (affecting
    all cell delays through the input-slew chain equally, approximated by
    scaling interconnect and an additive endpoint-level jitter drawn per
    sample) plus independent per-sample wire derates.  This captures the
    dominant, fully-correlated component of process variation — the one
    corner analysis bounds — while staying cheap enough to run hundreds
    of samples.
    """

    def __init__(self, netlist: Netlist, parasitics: ParasiticsProvider,
                 clock: Optional[ClockConstraint] = None,
                 sigma_global: float = 0.05, sigma_wire: float = 0.08,
                 seed: int = 0) -> None:
        self.netlist = netlist
        self.parasitics = parasitics
        self.clock = clock
        self.sigma_global = sigma_global
        self.sigma_wire = sigma_wire
        self.rng = np.random.default_rng(seed)

    def run_samples(self, n_samples: int = 100) -> StatisticalReport:
        """Sample ``n_samples`` STA outcomes."""
        base = STAEngine(self.netlist, self.parasitics, self.clock).run()
        names = sorted(base.endpoint_arrivals)
        nominal = np.array([base.endpoint_arrivals[n] for n in names])

        rows = []
        for _ in range(n_samples):
            global_factor = float(np.exp(
                self.rng.normal(0.0, self.sigma_global)
            ))
            wire_derate = float(np.exp(
                self.rng.normal(0.0, self.sigma_wire)
            ))
            if abs(wire_derate - 1.0) > 1e-9:
                derated = DeratedParasitics(self.parasitics, wire_derate)
                report = STAEngine(self.netlist, derated,
                                   self.clock).run()
                ats = np.array([report.endpoint_arrivals[n]
                                for n in names])
            else:
                ats = nominal
            rows.append(global_factor * ats)
        return StatisticalReport(samples=np.stack(rows),
                                 endpoint_names=names)


def format_statistical_report(report: StatisticalReport,
                              period: float, top: int = 5) -> str:
    """Render mean/sigma/3-sigma arrival for the most critical endpoints."""
    mean = report.mean()
    std = report.std()
    q997 = report.quantile(0.997)
    order = np.argsort(-q997)[:top]
    lines = [
        f"statistical STA over {report.samples.shape[0]} samples; "
        f"yield at {period:.4f} ns: {report.yield_at(period):.1%}",
        f"{'endpoint':>24} {'mean':>8} {'sigma':>8} {'q99.7':>8}",
    ]
    for k in order:
        lines.append(
            f"{report.endpoint_names[k]:>24} {mean[k]:>8.4f} "
            f"{std[k]:>8.4f} {q997[k]:>8.4f}"
        )
    return "\n".join(lines)
