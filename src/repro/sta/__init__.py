"""Static timing analysis substrate: RC/Elmore, constraints, PERT engine."""

from .constraints import ClockConstraint, derive_constraints, estimate_depth
from .engine import STAEngine, TimingReport, run_sta
from .hold import HoldAnalyzer, HoldReport, run_hold_sta
from .paths import PathStage, PathTracer, TimingPath, report_worst_paths
from .rc import RCNode, RCTree
from .variation import (
    DeratedParasitics,
    MonteCarloSTA,
    StatisticalReport,
    format_statistical_report,
    run_ocv_sta,
)

__all__ = [
    "ClockConstraint",
    "DeratedParasitics",
    "MonteCarloSTA",
    "StatisticalReport",
    "format_statistical_report",
    "run_ocv_sta",
    "HoldAnalyzer",
    "HoldReport",
    "PathStage",
    "PathTracer",
    "RCNode",
    "RCTree",
    "STAEngine",
    "TimingPath",
    "TimingReport",
    "derive_constraints",
    "estimate_depth",
    "report_worst_paths",
    "run_hold_sta",
    "run_sta",
]
