"""Static timing analysis: PERT traversal over the netlist pin graph.

The engine levelises the timing graph (net edges from drivers to sinks,
cell edges from combinational inputs to outputs) and propagates arrival
time and transition (slew) from startpoints (primary inputs and flop Q
pins) to endpoints (flop D pins and primary outputs) in one pass — the
"single PERT-like traversal" of classic STA [5].

Cell arc delays come from the library's NLDM tables; interconnect comes
from a :class:`~repro.route.estimator.ParasiticsProvider` (star estimates
pre-route, RC-tree Elmore at signoff).  Running the same engine with both
providers is how the flow produces the pre-route vs signoff timing gap
the paper studies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist import Netlist, Pin
from ..route.estimator import ParasiticsProvider
from .constraints import ClockConstraint, derive_constraints


@dataclass
class TimingReport:
    """Result of one STA run.

    All dictionaries are keyed by pin index.  ``endpoint_arrivals`` maps
    the *name* of each endpoint (stable across netlist restructuring) to
    its worst arrival time, which is the label the paper's model predicts.
    """

    arrival: Dict[int, float]
    slew: Dict[int, float]
    slack: Dict[int, float]
    endpoint_arrivals: Dict[str, float]
    clock: ClockConstraint
    pin_slack: Dict[int, float] = field(default_factory=dict)

    @property
    def wns(self) -> float:
        """Worst negative slack (ns); positive if all paths meet timing."""
        return min(self.slack.values()) if self.slack else 0.0

    @property
    def tns(self) -> float:
        """Total negative slack (ns)."""
        return sum(min(s, 0.0) for s in self.slack.values())

    def critical_endpoints(self, k: int = 10) -> List[Tuple[str, float]]:
        """The ``k`` endpoints with the largest arrival times."""
        ranked = sorted(self.endpoint_arrivals.items(),
                        key=lambda kv: -kv[1])
        return ranked[:k]


class STAEngine:
    """Propagates arrival/slew through a netlist.

    Parameters
    ----------
    netlist:
        Design to analyse; must be structurally valid.
    parasitics:
        Interconnect model (pre-route estimator or routed parasitics).
    clock:
        Timing constraint; derived from the library if omitted.
    """

    def __init__(self, netlist: Netlist, parasitics: ParasiticsProvider,
                 clock: Optional[ClockConstraint] = None) -> None:
        self.netlist = netlist
        self.parasitics = parasitics
        self.clock = clock or derive_constraints(netlist)

    # ------------------------------------------------------------------
    def run(self) -> TimingReport:
        arrival: Dict[int, float] = {}
        slew: Dict[int, float] = {}

        order, fanin_ready = self._levelize()
        lib_slew = self.netlist.library.primary_input_slew

        # Initialise startpoints.
        for pin in self.netlist.primary_inputs:
            arrival[pin.index] = 0.0
            slew[pin.index] = lib_slew
        for cell in self.netlist.sequential_cells:
            q = cell.output_pin
            if q.net is None:
                continue
            arc = cell.ref.arc_for("CK")
            load = self.parasitics.net_load(q.net)
            arrival[q.index] = arc.delay.lookup(lib_slew, load)
            slew[q.index] = arc.output_slew.lookup(lib_slew, load)

        # PERT traversal.
        for pin in order:
            if pin.index in arrival:
                self._propagate_from(pin, arrival, slew)
                continue
            if pin.direction == "input" or pin.is_port:
                continue
            # Combinational cell output: max over ready inputs.
            cell = pin.cell
            net = pin.net
            load = self.parasitics.net_load(net) if net is not None else 0.0
            best_at, best_slew = None, None
            for in_pin in cell.input_pins:
                at_in = arrival.get(in_pin.index)
                if at_in is None:
                    continue
                arc = cell.ref.arc_for(in_pin.name)
                if arc is None:
                    continue
                sl_in = slew.get(in_pin.index, lib_slew)
                at_out = at_in + arc.delay.lookup(sl_in, load)
                sl_out = arc.output_slew.lookup(sl_in, load)
                if best_at is None or at_out > best_at:
                    best_at = at_out
                if best_slew is None or sl_out > best_slew:
                    best_slew = sl_out
            if best_at is not None:
                arrival[pin.index] = best_at
                slew[pin.index] = best_slew
                self._propagate_from(pin, arrival, slew)

        report = self._report(arrival, slew)
        report.pin_slack = self._backward_required(order, arrival, slew,
                                                   report)
        return report

    def _backward_required(self, order: List[Pin],
                           arrival: Dict[int, float],
                           slew: Dict[int, float],
                           report: TimingReport) -> Dict[int, float]:
        """Propagate required times backwards; returns per-pin slack.

        Required time at an endpoint is the clock period minus setup; it
        moves upstream through wires (minus wire delay) and through cell
        arcs (minus arc delay), taking the min over all fanout branches.
        The optimizer uses the resulting per-pin slack to find the cells
        that actually sit on critical paths.
        """
        lib_slew = self.netlist.library.primary_input_slew
        period = self.clock.period - self.clock.uncertainty
        required: Dict[int, float] = {}
        for pin in self.netlist.timing_endpoints():
            if pin.index not in arrival:
                continue
            setup = 0.0
            if pin.cell is not None and pin.cell.is_sequential:
                setup = pin.cell.ref.setup_time
            required[pin.index] = period - setup

        def relax(pin_idx: int, value: float) -> None:
            cur = required.get(pin_idx)
            if cur is None or value < cur:
                required[pin_idx] = value

        for pin in reversed(order):
            # Wire first: the driver's required comes from its sinks, and
            # is then pushed through the cell to the cell's inputs.
            net = pin.net
            if net is not None and not net.is_clock and net.driver is pin:
                for sink in net.sinks:
                    if sink.index in required:
                        wd = self.parasitics.wire_delay(net, sink)
                        relax(pin.index, required[sink.index] - wd)
            if (pin.cell is not None and not pin.cell.is_sequential
                    and pin.direction == "output"
                    and pin.index in required):
                cell = pin.cell
                load = self.parasitics.net_load(net) if net else 0.0
                for in_pin in cell.input_pins:
                    arc = cell.ref.arc_for(in_pin.name)
                    if arc is None or in_pin.index not in arrival:
                        continue
                    sl_in = slew.get(in_pin.index, lib_slew)
                    delay = arc.delay.lookup(sl_in, load)
                    relax(in_pin.index, required[pin.index] - delay)

        return {idx: required[idx] - arrival[idx]
                for idx in required if idx in arrival}

    # ------------------------------------------------------------------
    def _propagate_from(self, pin: Pin, arrival: Dict[int, float],
                        slew: Dict[int, float]) -> None:
        """Push arrival/slew across ``pin``'s net to every sink."""
        net = pin.net
        if net is None or net.is_clock or net.driver is not pin:
            return
        for sink in net.sinks:
            at = arrival[pin.index] + self.parasitics.wire_delay(net, sink)
            sl = slew[pin.index] + self.parasitics.slew_degradation(net, sink)
            if at > arrival.get(sink.index, -np.inf):
                arrival[sink.index] = at
                slew[sink.index] = sl

    def _levelize(self) -> Tuple[List[Pin], Dict[int, int]]:
        """Topological order of pins along the combinational timing graph.

        The unit of ordering is the *cell output pin*: a cell output is
        ready once all its input pins' driving cells are ordered.  Net
        fanout is applied eagerly when a driver is visited, so only cell
        edges constrain the order.
        """
        # Count, for each combinational output pin, how many of its cell's
        # input pins are driven by other combinational outputs.
        dependents: Dict[int, List[Pin]] = {}
        indegree: Dict[int, int] = {}
        outputs: List[Pin] = []
        for cell in self.netlist.combinational_cells:
            out = cell.output_pin
            outputs.append(out)
            count = 0
            for in_pin in cell.input_pins:
                net = in_pin.net
                if net is None or net.driver is None or net.is_clock:
                    continue
                driver = net.driver
                if driver.cell is not None and not driver.cell.is_sequential:
                    count += 1
                    dependents.setdefault(driver.index, []).append(out)
            indegree[out.index] = count

        queue = deque(p for p in outputs if indegree[p.index] == 0)
        order: List[Pin] = []
        # Startpoints first so their fanout is propagated before use.
        order.extend(self.netlist.primary_inputs)
        order.extend(c.output_pin for c in self.netlist.sequential_cells)
        seen = 0
        while queue:
            pin = queue.popleft()
            order.append(pin)
            seen += 1
            for dep in dependents.get(pin.index, []):
                indegree[dep.index] -= 1
                if indegree[dep.index] == 0:
                    queue.append(dep)
        if seen != len(outputs):
            raise ValueError(
                "combinational loop detected: "
                f"{len(outputs) - seen} cells unreachable"
            )
        return order, indegree

    # ------------------------------------------------------------------
    def _report(self, arrival: Dict[int, float],
                slew: Dict[int, float]) -> TimingReport:
        slack: Dict[int, float] = {}
        endpoint_arrivals: Dict[str, float] = {}
        period = self.clock.period - self.clock.uncertainty
        for pin in self.netlist.timing_endpoints():
            at = arrival.get(pin.index)
            if at is None:
                continue
            setup = 0.0
            if pin.cell is not None and pin.cell.is_sequential:
                setup = pin.cell.ref.setup_time
            slack[pin.index] = period - setup - at
            endpoint_arrivals[pin.full_name] = at
        return TimingReport(arrival=arrival, slew=slew, slack=slack,
                            endpoint_arrivals=endpoint_arrivals,
                            clock=self.clock)


def run_sta(netlist: Netlist, parasitics: ParasiticsProvider,
            clock: Optional[ClockConstraint] = None) -> TimingReport:
    """Convenience wrapper around :class:`STAEngine`."""
    return STAEngine(netlist, parasitics, clock).run()
