"""Critical-path extraction and timing reports.

Real signoff tools report, for each of the N worst endpoints, the full
path from its launching startpoint with a per-stage delay breakdown.
This module reconstructs those paths from a PERT run by re-tracing the
worst-arrival predecessor of every pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..netlist import Netlist, Pin
from ..route.estimator import ParasiticsProvider
from .engine import STAEngine, TimingReport


@dataclass
class PathStage:
    """One hop of a timing path.

    ``kind`` is ``"cell"`` (through a gate) or ``"net"`` (across a wire);
    ``incr`` is the stage's delay contribution and ``arrival`` the
    cumulative arrival time at ``pin``.
    """

    pin: str
    kind: str
    incr: float
    arrival: float


@dataclass
class TimingPath:
    """A complete startpoint→endpoint path with its breakdown."""

    startpoint: str
    endpoint: str
    arrival: float
    slack: float
    stages: List[PathStage] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Number of cell stages on the path."""
        return sum(1 for s in self.stages if s.kind == "cell")

    def format(self) -> str:
        """Render like a signoff timing report."""
        lines = [
            f"Startpoint: {self.startpoint}",
            f"Endpoint:   {self.endpoint}",
            f"Arrival:    {self.arrival:.4f} ns   "
            f"Slack: {self.slack:+.4f} ns",
            f"{'pin':>28} {'kind':>5} {'incr':>8} {'arrival':>9}",
        ]
        for stage in self.stages:
            lines.append(
                f"{stage.pin:>28} {stage.kind:>5} "
                f"{stage.incr:>8.4f} {stage.arrival:>9.4f}"
            )
        return "\n".join(lines)


class PathTracer:
    """Re-derives worst paths from a completed :class:`TimingReport`.

    Works by walking backwards from an endpoint: at a net sink, step to
    the net's driver; at a combinational cell output, step to the input
    pin whose arrival plus arc delay reproduces the output arrival (the
    worst input).  Stops at primary inputs and flop Q pins.
    """

    def __init__(self, netlist: Netlist, parasitics: ParasiticsProvider,
                 report: TimingReport) -> None:
        self.netlist = netlist
        self.parasitics = parasitics
        self.report = report

    # ------------------------------------------------------------------
    def trace(self, endpoint: Pin) -> TimingPath:
        """Reconstruct the worst path ending at ``endpoint``."""
        arrival = self.report.arrival
        slew = self.report.slew
        lib_slew = self.netlist.library.primary_input_slew

        stages: List[PathStage] = []
        pin = endpoint
        guard = 0
        while guard < 100_000:
            guard += 1
            at = arrival.get(pin.index, 0.0)
            if pin.direction == "input":
                net = pin.net
                if net is None or net.driver is None or net.is_clock:
                    break
                driver = net.driver
                incr = self.parasitics.wire_delay(net, pin)
                stages.append(PathStage(pin.full_name, "net", incr, at))
                pin = driver
                continue
            # Output pin: either a startpoint or a combinational output.
            cell = pin.cell
            if cell is None or cell.is_sequential:
                stages.append(PathStage(pin.full_name, "start",
                                        0.0, at))
                break
            load = self.parasitics.net_load(pin.net) if pin.net else 0.0
            best_pin, best_err, best_incr = None, float("inf"), 0.0
            for in_pin in cell.input_pins:
                arc = cell.ref.arc_for(in_pin.name)
                at_in = arrival.get(in_pin.index)
                if arc is None or at_in is None:
                    continue
                sl_in = slew.get(in_pin.index, lib_slew)
                delay = arc.delay.lookup(sl_in, load)
                err = abs(at_in + delay - at)
                if err < best_err:
                    best_pin, best_err, best_incr = in_pin, err, delay
            if best_pin is None:
                break
            stages.append(PathStage(pin.full_name, "cell", best_incr, at))
            pin = best_pin

        stages.reverse()
        startpoint = stages[0].pin if stages else endpoint.full_name
        at = arrival.get(endpoint.index, 0.0)
        return TimingPath(
            startpoint=startpoint,
            endpoint=endpoint.full_name,
            arrival=at,
            slack=self.report.slack.get(endpoint.index, 0.0),
            stages=stages,
        )

    def worst_paths(self, n: int = 10) -> List[TimingPath]:
        """The ``n`` paths with the worst slack, traced in full."""
        endpoints = sorted(
            (p for p in self.netlist.timing_endpoints()
             if p.index in self.report.slack),
            key=lambda p: self.report.slack[p.index],
        )
        return [self.trace(p) for p in endpoints[:n]]


def report_worst_paths(netlist: Netlist, parasitics: ParasiticsProvider,
                       n: int = 5,
                       report: Optional[TimingReport] = None) -> str:
    """Run STA (if needed) and render the n worst paths as text."""
    if report is None:
        report = STAEngine(netlist, parasitics).run()
    tracer = PathTracer(netlist, parasitics, report)
    blocks = [path.format() for path in tracer.worst_paths(n)]
    return ("\n" + "-" * 60 + "\n").join(blocks)
