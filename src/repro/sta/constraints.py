"""Timing constraints.

The paper derives PnR timing constraints "from estimated values provided
by Cadence Genus during synthesis".  We mimic this: the clock period
starts from the library default for the node and is tightened toward the
design's estimated logic depth so that timing optimization has real work
to do on every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist import Netlist


@dataclass(frozen=True)
class ClockConstraint:
    """A single-clock constraint: period and setup uncertainty (ns)."""

    period: float
    uncertainty: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("clock period must be positive")
        if self.uncertainty < 0 or self.uncertainty >= self.period:
            raise ValueError("uncertainty must be in [0, period)")


def estimate_depth(netlist: Netlist) -> int:
    """Longest combinational path length in cells (unit delays).

    A quick structural estimate in the spirit of synthesis-time timing
    estimation; STA refines it with real delays.
    """
    from collections import deque

    depth = {}
    dependents = {}
    indegree = {}
    outputs = []
    for cell in netlist.combinational_cells:
        out = cell.output_pin
        outputs.append(out)
        count = 0
        for in_pin in cell.input_pins:
            net = in_pin.net
            if net is None or net.driver is None or net.is_clock:
                continue
            drv = net.driver
            if drv.cell is not None and not drv.cell.is_sequential:
                count += 1
                dependents.setdefault(drv.index, []).append(out)
        indegree[out.index] = count
    queue = deque(p for p in outputs if indegree[p.index] == 0)
    best = 0
    while queue:
        pin = queue.popleft()
        d = depth.get(pin.index, 1)
        best = max(best, d)
        for dep in dependents.get(pin.index, []):
            depth[dep.index] = max(depth.get(dep.index, 1), d + 1)
            indegree[dep.index] -= 1
            if indegree[dep.index] == 0:
                queue.append(dep)
    return best


def derive_constraints(netlist: Netlist,
                       pressure: float = 0.85) -> ClockConstraint:
    """Derive a clock constraint for ``netlist``.

    The period is the larger of a depth-proportional estimate and a
    fraction of the node's default period, scaled by ``pressure`` (< 1
    tightens the constraint so optimization always has critical paths).
    """
    lib = netlist.library
    # Rough per-stage delay: a unit inverter driving four of itself.
    inv = lib.pick("INV", 1.0)
    fo4 = inv.arcs[0].delay.lookup(lib.primary_input_slew,
                                   4.0 * inv.input_cap("A"))
    depth = estimate_depth(netlist)
    estimated = 2.5 * fo4 * max(depth, 1)
    period = pressure * max(estimated, 0.25 * lib.default_clock_period)
    return ClockConstraint(period=period,
                           uncertainty=0.02 * period)
