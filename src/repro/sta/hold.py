"""Hold (min-delay) analysis.

Setup analysis asks whether the *slowest* path beats the clock period;
hold analysis asks whether the *fastest* path through each endpoint is
slow enough not to race the same clock edge.  The engine mirrors the
setup PERT traversal with min-propagation and per-arc minimum delays.

The paper only predicts max arrival times, but any STA substrate a
downstream user would adopt needs both checks; the flow uses hold
results as a sanity invariant (min arrival <= max arrival everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..netlist import Netlist, Pin
from ..route.estimator import ParasiticsProvider
from .constraints import ClockConstraint, derive_constraints


@dataclass
class HoldReport:
    """Min-arrival times and hold slacks, keyed by pin index."""

    min_arrival: Dict[int, float]
    hold_slack: Dict[int, float]

    @property
    def worst_hold_slack(self) -> float:
        return min(self.hold_slack.values()) if self.hold_slack else 0.0


class HoldAnalyzer:
    """Min-delay PERT traversal (the dual of the setup engine).

    Min propagation takes the *minimum* over cell inputs and assumes the
    fastest table corner (smallest slew index) for pessimism reduction.
    Hold slack at a flop D pin is ``min_arrival - hold_time`` with a
    simple per-library hold time of 25% of the setup time.
    """

    def __init__(self, netlist: Netlist, parasitics: ParasiticsProvider,
                 clock: Optional[ClockConstraint] = None) -> None:
        self.netlist = netlist
        self.parasitics = parasitics
        self.clock = clock or derive_constraints(netlist)

    def run(self) -> HoldReport:
        from collections import deque

        lib_slew = self.netlist.library.primary_input_slew
        arrival: Dict[int, float] = {}

        # Levelize identically to the setup engine.
        dependents: Dict[int, list] = {}
        indegree: Dict[int, int] = {}
        outputs = []
        for cell in self.netlist.combinational_cells:
            out = cell.output_pin
            outputs.append(out)
            count = 0
            for in_pin in cell.input_pins:
                net = in_pin.net
                if net is None or net.driver is None or net.is_clock:
                    continue
                drv = net.driver
                if drv.cell is not None and not drv.cell.is_sequential:
                    count += 1
                    dependents.setdefault(drv.index, []).append(out)
            indegree[out.index] = count

        def push(pin: Pin) -> None:
            net = pin.net
            if net is None or net.is_clock or net.driver is not pin:
                return
            for sink in net.sinks:
                at = arrival[pin.index] \
                    + self.parasitics.wire_delay(net, sink)
                if at < arrival.get(sink.index, np.inf):
                    arrival[sink.index] = at

        for pin in self.netlist.primary_inputs:
            arrival[pin.index] = 0.0
            push(pin)
        for cell in self.netlist.sequential_cells:
            q = cell.output_pin
            if q.net is None:
                continue
            arc = cell.ref.arc_for("CK")
            load = self.parasitics.net_load(q.net)
            arrival[q.index] = arc.delay.lookup(lib_slew, load)
            push(q)

        queue = deque(p for p in outputs if indegree[p.index] == 0)
        while queue:
            pin = queue.popleft()
            cell = pin.cell
            load = self.parasitics.net_load(pin.net) if pin.net else 0.0
            best = None
            for in_pin in cell.input_pins:
                arc = cell.ref.arc_for(in_pin.name)
                at_in = arrival.get(in_pin.index)
                if arc is None or at_in is None:
                    continue
                # Fastest corner: the smallest tabulated slew.
                delay = arc.delay.lookup(arc.delay.slew_axis[0], load)
                candidate = at_in + delay
                if best is None or candidate < best:
                    best = candidate
            if best is not None:
                arrival[pin.index] = best
                push(pin)
            for dep in dependents.get(pin.index, []):
                indegree[dep.index] -= 1
                if indegree[dep.index] == 0:
                    queue.append(dep)

        hold_slack: Dict[int, float] = {}
        for pin in self.netlist.timing_endpoints():
            at = arrival.get(pin.index)
            if at is None:
                continue
            hold_time = 0.0
            if pin.cell is not None and pin.cell.is_sequential:
                hold_time = 0.25 * pin.cell.ref.setup_time
            hold_slack[pin.index] = at - hold_time
        return HoldReport(min_arrival=arrival, hold_slack=hold_slack)


def run_hold_sta(netlist: Netlist, parasitics: ParasiticsProvider,
                 clock: Optional[ClockConstraint] = None) -> HoldReport:
    """Convenience wrapper around :class:`HoldAnalyzer`."""
    return HoldAnalyzer(netlist, parasitics, clock).run()
