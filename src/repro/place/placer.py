"""Quadratic placement with row legalisation (Innovus stand-in).

The global placer minimises quadratic wirelength: nets are expanded with
the clique model into pairwise springs, fixed port locations anchor the
system, and the resulting sparse linear system is solved once per axis
with scipy.  A grid-based spreading pass then relieves overlap, and a
tetris-style legaliser snaps cells to rows and sites while avoiding macro
blockages.

Cell pin locations are derived from the placed cell origin; downstream
stages (routing, density maps, STA wire models) only consume pin
locations, matching how DEF-based flows work.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..netlist import CellInst, Netlist
from .floorplan import Floorplan, assign_port_locations, make_floorplan


class QuadraticPlacer:
    """Analytic global placement + legalisation for one netlist.

    Parameters
    ----------
    netlist:
        Design to place.  Port locations must already be assigned (the
        :func:`place_design` driver handles this).
    floorplan:
        Die geometry.
    seed:
        Used for tie-break jitter so perfectly symmetric designs do not
        collapse onto a line.
    """

    def __init__(self, netlist: Netlist, floorplan: Floorplan,
                 seed: int = 0) -> None:
        self.netlist = netlist
        self.floorplan = floorplan
        self.rng = np.random.default_rng(seed)
        self.cells: List[CellInst] = list(netlist.cells.values())
        self._index: Dict[str, int] = {c.name: i for i, c in
                                       enumerate(self.cells)}

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Place all cells: global solve, spreading, legalisation."""
        if not self.cells:
            return
        x, y = self._solve_quadratic()
        x, y = self._spread(x, y)
        self._legalize(x, y)
        self._update_pin_locations()

    # ------------------------------------------------------------------
    def _solve_quadratic(self) -> Tuple[np.ndarray, np.ndarray]:
        """Minimise clique-model quadratic wirelength with fixed ports."""
        n = len(self.cells)
        lap = sp.lil_matrix((n, n))
        bx = np.zeros(n)
        by = np.zeros(n)
        anchor = 1e-6  # tiny pull to die centre keeps the system SPD

        for net in self.netlist.nets.values():
            pins = [p for p in net.pins if p is not None]
            if len(pins) < 2 or net.is_clock:
                continue
            weight = 1.0 / (len(pins) - 1)
            for i in range(len(pins)):
                for j in range(i + 1, len(pins)):
                    self._add_spring(lap, bx, by, pins[i], pins[j], weight)

        cx, cy = self.floorplan.width / 2, self.floorplan.height / 2
        for i in range(n):
            lap[i, i] += anchor
            bx[i] += anchor * cx
            by[i] += anchor * cy

        lap = lap.tocsr()
        x = spla.spsolve(lap, bx)
        y = spla.spsolve(lap, by)
        jitter = self.floorplan.site_width
        x = x + self.rng.uniform(-jitter, jitter, size=n)
        y = y + self.rng.uniform(-jitter, jitter, size=n)
        return x, y

    def _add_spring(self, lap, bx, by, pin_a, pin_b, weight: float) -> None:
        ia = self._index.get(pin_a.cell.name) if pin_a.cell else None
        ib = self._index.get(pin_b.cell.name) if pin_b.cell else None
        if ia is None and ib is None:
            return
        if ia is not None and ib is not None:
            lap[ia, ia] += weight
            lap[ib, ib] += weight
            lap[ia, ib] -= weight
            lap[ib, ia] -= weight
        elif ia is not None:
            lap[ia, ia] += weight
            bx[ia] += weight * pin_b.x
            by[ia] += weight * pin_b.y
        else:
            lap[ib, ib] += weight
            bx[ib] += weight * pin_a.x
            by[ib] += weight * pin_a.y

    # ------------------------------------------------------------------
    def _spread(self, x: np.ndarray,
                y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Relieve clustering by equalising cell counts across grid bins.

        Quadratic solutions collapse toward the centre; this pass ranks
        cells along each axis and maps ranks back to die coordinates,
        preserving relative order (a cheap form of look-ahead spreading).
        """
        n = len(x)
        if n < 2:
            return x, y
        alpha = 0.8  # how strongly to blend toward the uniform spread
        order_x = np.argsort(x)
        order_y = np.argsort(y)
        spread_x = np.empty(n)
        spread_y = np.empty(n)
        margin = 2 * self.floorplan.site_width
        spread_x[order_x] = np.linspace(margin, self.floorplan.width - margin,
                                        n)
        spread_y[order_y] = np.linspace(margin, self.floorplan.height - margin,
                                        n)
        return ((1 - alpha) * x + alpha * spread_x,
                (1 - alpha) * y + alpha * spread_y)

    # ------------------------------------------------------------------
    def _legalize(self, x: np.ndarray, y: np.ndarray) -> None:
        """Tetris legalisation: rows by y, greedy site packing by x."""
        fp = self.floorplan
        n_rows = fp.num_rows
        # Row capacity in um of usable width, accounting for macros.
        row_used = np.zeros(n_rows)
        row_cells: List[List[int]] = [[] for _ in range(n_rows)]

        target_rows = np.clip((y / fp.row_height).astype(int), 0, n_rows - 1)
        order = np.argsort(x)
        for idx in order:
            cell = self.cells[idx]
            width = max(fp.site_width,
                        cell.ref.area / fp.row_height)
            row = int(target_rows[idx])
            placed = False
            for offset in self._row_probe_order(n_rows):
                r = row + offset
                if not 0 <= r < n_rows:
                    continue
                pos = row_used[r]
                # Skip macro spans.
                row_y = fp.row_y(r)
                guard = 0
                while fp.in_macro(pos + width / 2, row_y) and guard < 100:
                    pos = self._macro_right_edge(pos, row_y)
                    guard += 1
                if pos + width <= fp.width:
                    cell.x = pos + width / 2
                    cell.y = row_y
                    row_used[r] = pos + width
                    row_cells[r].append(idx)
                    placed = True
                    break
            if not placed:
                # Overflow: stack into the least-used row regardless.
                r = int(np.argmin(row_used))
                cell.x = min(row_used[r] + width / 2, fp.width)
                cell.y = fp.row_y(r)
                row_used[r] += width

    @staticmethod
    def _row_probe_order(n_rows: int) -> List[int]:
        """0, +1, -1, +2, -2, ... probe offsets."""
        order = [0]
        for d in range(1, n_rows):
            order.extend((d, -d))
        return order

    def _macro_right_edge(self, pos: float, row_y: float) -> float:
        for macro in self.floorplan.macros:
            if macro.y <= row_y <= macro.y + macro.height \
                    and macro.x <= pos <= macro.x + macro.width:
                return macro.x + macro.width
        return pos + self.floorplan.site_width

    # ------------------------------------------------------------------
    def _update_pin_locations(self) -> None:
        """Pins inherit their cell's placed location (plus a tiny stagger).

        The stagger keeps input pins distinguishable on density maps
        without pretending we model real pin geometry.
        """
        for cell in self.cells:
            for k, pin in enumerate(cell.pins.values()):
                pin.x = cell.x + 0.1 * self.floorplan.site_width * k
                pin.y = cell.y


def place_design(netlist: Netlist, utilization: float = 0.65,
                 n_macros: int = 2, seed: int = 0) -> Floorplan:
    """Full placement driver: floorplan, port ring, global place, legalise.

    Returns the floorplan (pin/cell coordinates are written in place).
    """
    floorplan = make_floorplan(netlist, utilization=utilization,
                               n_macros=n_macros, seed=seed)
    assign_port_locations(netlist, floorplan)
    QuadraticPlacer(netlist, floorplan, seed=seed).run()
    return floorplan


def total_hpwl(netlist: Netlist) -> float:
    """Total half-perimeter wirelength of all placed nets (um)."""
    total = 0.0
    for net in netlist.nets.values():
        pins = net.pins
        if len(pins) < 2:
            continue
        xs = [p.x for p in pins]
        ys = [p.y for p in pins]
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total
