"""Floorplanning: die sizing, placement rows, port ring, macro regions.

The die is sized from total cell area at a target utilisation, divided
into standard-cell rows.  Ports are distributed around the periphery.
Synthetic macro blockages stand in for the memory macros real designs
contain (the paper's layout image set includes a macro-region map, so the
flow must produce macro geometry even though our benchmark generators emit
pure standard-cell logic — see DESIGN.md's substitution table).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..netlist import Netlist


@dataclass
class MacroRegion:
    """An axis-aligned placement blockage (synthetic memory macro)."""

    x: float
    y: float
    width: float
    height: float

    def contains(self, x: float, y: float) -> bool:
        return (self.x <= x <= self.x + self.width
                and self.y <= y <= self.y + self.height)

    @property
    def area(self) -> float:
        return self.width * self.height


@dataclass
class Floorplan:
    """Die geometry for one design.

    Attributes
    ----------
    width, height:
        Die dimensions in um.
    row_height:
        Standard-cell row pitch (the library site height).
    site_width:
        Horizontal legalisation grid (the library site width).
    macros:
        Placement blockages.
    utilization:
        Target cell-area / placeable-area ratio used when sizing the die.
    """

    width: float
    height: float
    row_height: float
    site_width: float
    macros: List[MacroRegion] = field(default_factory=list)
    utilization: float = 0.65

    @property
    def num_rows(self) -> int:
        return max(1, int(self.height / self.row_height))

    @property
    def core_area(self) -> float:
        return self.width * self.height - sum(m.area for m in self.macros)

    def row_y(self, row: int) -> float:
        """Center y coordinate of ``row``."""
        return (row + 0.5) * self.row_height

    def in_macro(self, x: float, y: float) -> bool:
        return any(m.contains(x, y) for m in self.macros)

    def clamp(self, x: float, y: float) -> Tuple[float, float]:
        """Clamp a point into the die."""
        return (min(max(x, 0.0), self.width), min(max(y, 0.0), self.height))


def make_floorplan(netlist: Netlist, utilization: float = 0.65,
                   aspect_ratio: float = 1.0, n_macros: int = 2,
                   seed: int = 0) -> Floorplan:
    """Size a die for ``netlist`` and drop in synthetic macro blockages.

    Parameters
    ----------
    netlist:
        The mapped design; total cell area determines die area.
    utilization:
        Fraction of the core area the standard cells may occupy.
    aspect_ratio:
        Height/width ratio of the die.
    n_macros:
        Number of synthetic macro blockages (0 disables them).  Macros
        occupy ~8% of the die each and hug the die corners, like memory
        macros usually do.
    seed:
        Seed for macro corner selection, so each design gets a distinct
        but reproducible macro arrangement.
    """
    lib = netlist.library
    cell_area = netlist.total_cell_area()
    # Reserve room for macros on top of the standard-cell demand.
    macro_fraction = 0.08 * n_macros
    core_area = cell_area / max(utilization, 1e-3) / max(1.0 - macro_fraction,
                                                         0.3)
    # An empty or near-empty netlist still gets a minimal usable die.
    core_area = max(core_area, 25.0 * lib.site[0] * lib.site[1])
    width = math.sqrt(core_area / aspect_ratio)
    height = core_area / width
    # Round height to a whole number of rows.
    row_height = lib.site[1]
    height = max(row_height, math.ceil(height / row_height) * row_height)
    fp = Floorplan(width=width, height=height, row_height=row_height,
                   site_width=lib.site[0], utilization=utilization)

    rng = np.random.default_rng(seed)
    corners = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]
    rng.shuffle(corners)
    for k in range(min(n_macros, len(corners))):
        cx, cy = corners[k]
        m_w, m_h = 0.30 * width, 0.28 * height
        x = 0.0 if cx == 0.0 else width - m_w
        y = 0.0 if cy == 0.0 else height - m_h
        fp.macros.append(MacroRegion(x, y, m_w, m_h))
    return fp


def assign_port_locations(netlist: Netlist, floorplan: Floorplan) -> None:
    """Spread the design's ports evenly around the die boundary."""
    ports = sorted(netlist.ports.values(), key=lambda p: p.name)
    n = len(ports)
    if n == 0:
        return
    perimeter = 2.0 * (floorplan.width + floorplan.height)
    for i, pin in enumerate(ports):
        d = perimeter * i / n
        if d < floorplan.width:
            x, y = d, 0.0
        elif d < floorplan.width + floorplan.height:
            x, y = floorplan.width, d - floorplan.width
        elif d < 2 * floorplan.width + floorplan.height:
            x, y = d - floorplan.width - floorplan.height, floorplan.height
        else:
            x, y = 0.0, d - 2 * floorplan.width - floorplan.height
        pin.x, pin.y = x, y
