"""Placement substrate: floorplanning and quadratic placement."""

from .floorplan import (
    Floorplan,
    MacroRegion,
    assign_port_locations,
    make_floorplan,
)
from .placer import QuadraticPlacer, place_design, total_hpwl

__all__ = [
    "Floorplan",
    "MacroRegion",
    "QuadraticPlacer",
    "assign_port_locations",
    "make_floorplan",
    "place_design",
    "total_hpwl",
]
