"""Saving and loading model parameters as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from .layers import Module


def save_module(module: Module, path: Union[str, Path]) -> None:
    """Write a module's state dict to ``path`` as a compressed ``.npz``."""
    state = module.state_dict()
    np.savez_compressed(str(path), **state)


def load_module(module: Module, path: Union[str, Path]) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    with np.load(str(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module
