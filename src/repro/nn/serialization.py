"""Saving and loading model parameters as ``.npz`` archives.

All writers here go through :func:`atomic_savez`, which stages the
archive in a temporary file and ``os.replace``-renames it over the
target.  A crash (or a full disk, or a SIGKILL) mid-save therefore
never leaves a truncated archive at the destination path — the old
file, if any, survives intact.  The rename also pins the final name
exactly: ``np.savez_compressed`` silently appends ``.npz`` when the
target lacks the suffix, so saving to ``model`` used to produce
``model.npz`` and break any caller that later opened ``model``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Mapping, Union

import numpy as np

from .layers import Module

__all__ = ["CheckpointError", "atomic_savez", "load_module",
           "save_module"]


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or applied.

    Raised with a message naming the offending file and — for
    missing/mismatched archive entries — the offending key, so a
    corrupt or incompatible checkpoint fails with a diagnosis instead
    of a half-mutated model.
    """


def atomic_savez(path: Union[str, Path],
                 arrays: Mapping[str, np.ndarray]) -> Path:
    """Write ``arrays`` as a compressed ``.npz`` at *exactly* ``path``.

    The archive is staged next to the target (same filesystem, so the
    rename is atomic) and moved into place with ``os.replace``.  On any
    failure the temporary file is removed and the pre-existing target
    is left untouched.  Returns the final path.
    """
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    # The stage name ends in .npz so numpy does not append a second
    # suffix; the pid keeps concurrent writers from clobbering each
    # other's stage file.
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp.npz")
    try:
        np.savez_compressed(str(tmp), **arrays)
        os.replace(tmp, path)
    # repro-check: disable=bare-except -- cleanup-and-reraise: the stage file must go even on KeyboardInterrupt
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def save_module(module: Module, path: Union[str, Path]) -> Path:
    """Write a module's state dict to ``path`` as a compressed ``.npz``.

    Atomic (temp file + rename) and suffix-exact: the file lands at
    ``path`` verbatim, even without a ``.npz`` extension.
    """
    return atomic_savez(path, module.state_dict())


def load_module(module: Module, path: Union[str, Path]) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    with np.load(str(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module
