"""Layer/module abstractions on top of the autograd engine.

Mirrors the small subset of ``torch.nn`` the paper's model needs: a
:class:`Module` base with recursive parameter collection, :class:`Linear`,
:class:`Conv2d`, activations, :class:`Sequential`, and an :class:`MLP`
convenience wrapper (the paper uses several two-layer MLPs).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor


class Module:
    """Base class for layers and models.

    Subclasses register parameters by assigning :class:`Tensor` attributes
    with ``requires_grad=True`` and submodules by assigning :class:`Module`
    attributes.  :meth:`parameters` walks the attribute tree recursively.
    """

    def __init__(self) -> None:
        self.training = True

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    # -- parameter handling ------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield (dotted_name, parameter) pairs, depth first."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{full}.{i}", item

    def parameters(self) -> List[Tensor]:
        """Return all trainable parameters of the module tree."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear the gradient buffers of every parameter."""
        for p in self.parameters():
            p.grad = None

    # -- train/eval mode ---------------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- state dict ---------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values in place; shapes must match exactly."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            if params[name].data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{params[name].data.shape} vs {value.shape}"
                )
            # repro-check: disable=tensor-data-mutation -- checkpoint load writes leaf parameters between steps
            params[name].data[...] = value


class Linear(Module):
    """Affine transform ``y = x @ W + b`` with W of shape (in, out)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.xavier_uniform((in_features, out_features), rng),
            requires_grad=True,
        )
        self.bias = Tensor(init.zeros((out_features,)), requires_grad=True) \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2D convolution layer on NCHW input."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, stride: int = 1, padding: int = 0,
                 bias: bool = True) -> None:
        super().__init__()
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Tensor(init.kaiming_uniform(shape, rng),
                             requires_grad=True)
        self.bias = Tensor(init.zeros((out_channels,)), requires_grad=True) \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class MaxPool2d(Module):
    def __init__(self, kernel: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, self.stride)


class Sequential(Module):
    """Apply submodules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]

    def __len__(self) -> int:
        return len(self.modules)


class MLP(Module):
    """Multi-layer perceptron with configurable activations.

    Parameters
    ----------
    sizes:
        Layer widths, e.g. ``[in, hidden, out]`` builds two linear layers.
    rng:
        Random generator for weight initialisation.
    activation:
        Hidden activation; one of ``"relu"``, ``"tanh"``.
    final_activation:
        Optional activation after the last linear layer (the paper's
        ``MLP_d`` appends a tanh; ``MLP_n`` has none).
    """

    _ACTIVATIONS = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid}

    def __init__(self, sizes: Sequence[int], rng: np.random.Generator,
                 activation: str = "relu",
                 final_activation: Optional[str] = None) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        layers: List[Module] = []
        for i, (d_in, d_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(d_in, d_out, rng))
            if i < len(sizes) - 2:
                layers.append(self._ACTIVATIONS[activation]())
        if final_activation is not None:
            layers.append(self._ACTIVATIONS[final_activation]())
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mu) / ((var + self.eps) ** 0.5)
        return normed * self.gamma + self.beta
