"""Thread-local gradient-mode switch for the autograd engine.

Inference never calls ``backward()``, yet every op still pays for it:
:func:`Tensor._make` wires parents into the result and every op
attaches a backward closure, keeping the whole forward graph (and all
its intermediate buffers) alive until the output is garbage collected.
:class:`no_grad` turns that bookkeeping off for a dynamic scope::

    with no_grad():
        preds = model.predict(design)     # plain numpy forward

Inside the block every op produces a detached ``requires_grad=False``
tensor — no parents, no closure, bit-identical forward values (the
numeric kernels are untouched; only graph recording is skipped).

The flag is **thread-local**: a serving thread running forward-only
inference never disables gradient recording for a training thread.
All ops funnel through :meth:`Tensor._make` (directly or via
``_finish``), so honoring the flag there covers ``tensor.py``,
``functional.py``, ``layers.py`` and the hand-written fused kernels
alike — and any future op built on the same plumbing inherits it.
``repro check`` audits exactly that invariant (see
:func:`repro.check.gradcheck.audit_no_grad`).
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["is_grad_enabled", "no_grad", "enable_grad"]

_STATE = threading.local()


def is_grad_enabled() -> bool:
    """True unless the calling thread is inside a :class:`no_grad` block."""
    return getattr(_STATE, "enabled", True)


class _GradMode:
    """Reentrant context manager / decorator pinning the grad flag."""

    __slots__ = ("_target", "_previous")

    def __init__(self, target: bool) -> None:
        self._target = target
        # Stack of saved states: one instance may be nested or shared.
        self._previous = []

    def __enter__(self) -> "_GradMode":
        self._previous.append(is_grad_enabled())
        _STATE.enabled = self._target
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _STATE.enabled = self._previous.pop()

    def __call__(self, func: Callable) -> Callable:
        import functools

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with type(self)(self._target):
                return func(*args, **kwargs)

        return wrapper


def no_grad() -> _GradMode:
    """Disable gradient recording for a ``with`` block (or decorator)."""
    return _GradMode(False)


def enable_grad() -> _GradMode:
    """Re-enable gradient recording inside a :func:`no_grad` scope."""
    return _GradMode(True)
