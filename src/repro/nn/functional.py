"""Functional neural-network operations built on the autograd engine.

Includes the convolution/pooling primitives used by the layout CNN, the
softmax family used by the contrastive loss, and the regression losses used
by the timing predictor (MSE and the Gaussian negative log-likelihood that
appears inside the ELBO).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..util import is_legacy
from . import _tracing
from .grad_mode import is_grad_enabled
from .tensor import Tensor, _finish, as_tensor

LOG_2PI = float(np.log(2.0 * np.pi))


def _inference_only(grad: np.ndarray, out: Tensor) -> None:
    """Backward placeholder for ops with a dedicated no-grad fast path.

    Such ops are only reachable with gradients disabled, so ``_finish``
    drops this function without constructing a wiring closure; it can
    never legitimately run.
    """
    raise AssertionError("inference-only op entered backward")


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def _log_softmax_raw(x: np.ndarray, axis: int,
                     out: np.ndarray = None) -> np.ndarray:
    """Numerically stable log-softmax on a raw array (``out=`` capable).

    The exact arithmetic sequence of the historical Tensor composition
    (``x - max``, clipped exp, sum, log, subtract), shared by the eager
    op and the compiled kernel so both produce bit-identical values.
    """
    shifted = x - x.max(axis=axis, keepdims=True)
    denom = np.log(np.exp(np.clip(shifted, -700.0, 700.0))
                   .sum(axis=axis, keepdims=True))
    if out is None:
        return shifted - denom
    np.subtract(shifted, denom, out=out)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``.

    A single primitive op (not a composition): the max-shift is a
    *data-dependent constant*, which a trace would otherwise bake in as
    a frozen value — replays with different inputs would silently lose
    the numerical stabilisation.  The closed-form backward is the
    standard ``g - softmax * sum(g)``.
    """
    out_data = _log_softmax_raw(x.data, axis)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        softm = np.exp(out_data)
        out._send(x, grad - softm * grad.sum(axis=axis, keepdims=True))

    return _finish(out_data, (x,), backward, op="log_softmax",
                   attrs={"axis": axis})


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


# ----------------------------------------------------------------------
# Losses
# ----------------------------------------------------------------------
def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    target = as_tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error over all elements."""
    target = as_tensor(target)
    return (prediction - target.detach()).abs().mean()


def gaussian_nll(prediction: Tensor, target: Tensor,
                 log_var: Tensor) -> Tensor:
    """Mean Gaussian negative log-likelihood.

    ``-log p(y | mu, sigma^2)`` with ``mu = prediction`` and
    ``sigma^2 = exp(log_var)``, averaged over elements.  This is the
    likelihood term of the ELBO in Equation (8)/(11) of the paper.
    """
    target = as_tensor(target)
    diff = prediction - target.detach()
    inv_var = (-log_var).exp()
    return (0.5 * (log_var + diff * diff * inv_var + LOG_2PI)).mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Mean Huber (smooth-L1) loss; robust alternative used in ablations."""
    target = as_tensor(target)
    diff = (prediction - target.detach()).abs()
    clipped = diff.clip(0.0, delta)
    return (0.5 * clipped * clipped + delta * (diff - clipped)).mean()


# ----------------------------------------------------------------------
# Convolution via im2col
# ----------------------------------------------------------------------
def _im2col(x: np.ndarray, kernel: Tuple[int, int], stride: int,
            padding: int) -> Tuple[np.ndarray, int, int]:
    """Unfold NCHW ``x`` into columns of shape (N, C*kh*kw, oh*ow)."""
    n, c, h, w = x.shape
    kh, kw = kernel
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    hp, wp = x.shape[2], x.shape[3]
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    strides = x.strides
    shape = (n, c, kh, kw, oh, ow)
    view_strides = (strides[0], strides[1], strides[2], strides[3],
                    strides[2] * stride, strides[3] * stride)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape,
                                              strides=view_strides)
    cols = patches.reshape(n, c * kh * kw, oh * ow)
    return np.ascontiguousarray(cols), oh, ow


def _col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int],
            kernel: Tuple[int, int], stride: int, padding: int,
            oh: int, ow: int) -> np.ndarray:
    """Fold columns back into an NCHW array (adjoint of :func:`_im2col`)."""
    n, c, h, w = x_shape
    kh, kw = kernel
    hp, wp = h + 2 * padding, w + 2 * padding
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    patches = cols.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i:i + stride * oh:stride, j:j + stride * ow:stride] += \
                patches[:, :, i, j]
    if padding:
        out = out[:, :, padding:hp - padding, padding:wp - padding]
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Tensor = None, stride: int = 1,
           padding: int = 0) -> Tensor:
    """2D convolution on NCHW input.

    Parameters
    ----------
    x:
        Input of shape (N, C_in, H, W).
    weight:
        Kernels of shape (C_out, C_in, kH, kW).
    bias:
        Optional per-output-channel bias of shape (C_out,).
    """
    c_out, c_in, kh, kw = weight.shape
    cols, oh, ow = _im2col(x.data, (kh, kw), stride, padding)
    w_mat = weight.data.reshape(c_out, c_in * kh * kw)
    legacy = is_legacy()
    if legacy:
        out_data = np.einsum("ok,nkl->nol", w_mat, cols)
    else:
        # Batched GEMM (BLAS) rather than einsum:
        # (o,k) @ (n,k,l) -> (n,o,l).
        out_data = np.matmul(w_mat, cols)
    if bias is not None:
        # In place: out_data is a fresh array either way, and the extra
        # (N, C_out, oh*ow) temporary is measurable on big path batches.
        out_data += bias.data[None, :, None]
    out_data = out_data.reshape(x.shape[0], c_out, oh, ow)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        grad_mat = grad.reshape(x.shape[0], c_out, oh * ow)
        if weight.requires_grad:
            if legacy:
                g_w = np.einsum("nol,nkl->ok", grad_mat, cols)
            else:
                g_w = np.matmul(grad_mat,
                                cols.transpose(0, 2, 1)).sum(axis=0)
            out._send(weight, g_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            out._send(bias, grad_mat.sum(axis=(0, 2)))
        if x.requires_grad:
            if legacy:
                g_cols = np.einsum("ok,nol->nkl", w_mat, grad_mat)
            else:
                g_cols = np.matmul(w_mat.T, grad_mat)
            g_x = _col2im(g_cols, x.shape, (kh, kw), stride, padding, oh, ow)
            out._send(x, g_x)

    return _finish(out_data, parents, backward, op="conv2d",
                   attrs={"stride": stride, "padding": padding,
                          "legacy": legacy, "has_bias": bias is not None})


def max_pool2d(x: Tensor, kernel: int = 2, stride: int = None) -> Tensor:
    """Max pooling on NCHW input with square window."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    if not is_grad_enabled():
        # Forward-only fast path: the argmax / take_along_axis pass (and
        # the window-flattening copy feeding it) exists solely to route
        # gradients; a running elementwise maximum over the kernel-offset
        # slices yields the same window maxima bit for bit at a fraction
        # of the memory traffic.
        out_data = None
        for i in range(kernel):
            for j in range(kernel):
                part = x.data[:, :, i:i + stride * oh:stride,
                              j:j + stride * ow:stride]
                if out_data is None:
                    out_data = part.copy()
                else:
                    np.maximum(out_data, part, out=out_data)
        return _finish(out_data, (x,), _inference_only)
    strides = x.data.strides
    shape = (n, c, oh, ow, kernel, kernel)
    view_strides = (strides[0], strides[1], strides[2] * stride,
                    strides[3] * stride, strides[2], strides[3])
    windows = np.lib.stride_tricks.as_strided(x.data, shape=shape,
                                              strides=view_strides)
    flat = windows.reshape(n, c, oh, ow, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    legacy = is_legacy()

    def backward(grad: np.ndarray, out: Tensor) -> None:
        g_x = np.zeros_like(x.data)
        ki, kj = np.divmod(arg, kernel)
        if legacy or stride < kernel:
            n_i, c_i, oh_i, ow_i = np.indices((n, c, oh, ow))
            rows = oh_i * stride + ki
            cols_ = ow_i * stride + kj
            np.add.at(g_x, (n_i, c_i, rows, cols_), grad)
        else:
            # Non-overlapping windows: each input cell is the argmax of
            # at most one window, so the scatter targets are unique and
            # a flat fancy assignment replaces the slow np.add.at.
            rows = np.arange(oh)[None, None, :, None] * stride + ki
            cols_ = np.arange(ow)[None, None, None, :] * stride + kj
            chan = (np.arange(n)[:, None, None, None] * c
                    + np.arange(c)[None, :, None, None])
            g_x.ravel()[(chan * h + rows) * w + cols_] = grad
        out._send(x, g_x)

    return _finish(out_data, (x,), backward, op="max_pool2d",
                   attrs={"kernel": kernel, "stride": stride,
                          "legacy": legacy})


def avg_pool2d(x: Tensor, kernel: int = 2, stride: int = None) -> Tensor:
    """Average pooling on NCHW input with square window."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    strides = x.data.strides
    shape = (n, c, oh, ow, kernel, kernel)
    view_strides = (strides[0], strides[1], strides[2] * stride,
                    strides[3] * stride, strides[2], strides[3])
    windows = np.lib.stride_tricks.as_strided(x.data, shape=shape,
                                              strides=view_strides)
    out_data = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        g_x = np.zeros_like(x.data)
        g = grad * scale
        for i in range(kernel):
            for j in range(kernel):
                g_x[:, :, i:i + stride * oh:stride, j:j + stride * ow:stride] += g
        out._send(x, g_x)

    return _finish(out_data, (x,), backward, op="avg_pool2d",
                   attrs={"kernel": kernel, "stride": stride})


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial dimensions, (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0.

    Untraceable: the mask is redrawn per call, so a compiled replay
    would freeze one mask forever.  An active trace is poisoned and the
    trainer falls back to eager execution.
    """
    if not training or rate <= 0.0:
        return x
    if _tracing.ACTIVE:
        _tracing.poison("dropout draws a fresh random mask per call")
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * Tensor(mask)


# ----------------------------------------------------------------------
# out=-capable kernel variants (the compiled step's building blocks)
# ----------------------------------------------------------------------
def _im2col_out(x: np.ndarray, kernel: Tuple[int, int], stride: int,
                padding: int, xpad: np.ndarray,
                cols6: np.ndarray) -> np.ndarray:
    """:func:`_im2col` into preallocated buffers (no strided reshape).

    ``xpad`` is the (possibly padded) input staging buffer — pass ``x``
    itself when ``padding == 0`` — and ``cols6`` a C-contiguous
    ``(n, c, kh, kw, oh, ow)`` buffer.  The per-(i, j) block copies
    land in contiguous destination planes, avoiding the pathological
    element-order copy ``as_strided(...).reshape`` performs; the
    returned ``(n, c*kh*kw, oh*ow)`` matrix is a free view of
    ``cols6`` with values bit-identical to :func:`_im2col`.
    """
    n, c, kh, kw, oh, ow = cols6.shape
    if padding:
        xpad[:, :, padding:padding + x.shape[2],
             padding:padding + x.shape[3]] = x
    else:
        xpad = x
    for i in range(kh):
        for j in range(kw):
            cols6[:, :, i, j] = xpad[:, :, i:i + stride * oh:stride,
                                     j:j + stride * ow:stride]
    return cols6.reshape(n, c * kh * kw, oh * ow)


def _col2im_out(cols: np.ndarray, kernel: Tuple[int, int], stride: int,
                padding: int, oh: int, ow: int, gpad: np.ndarray,
                gx: np.ndarray) -> np.ndarray:
    """:func:`_col2im` into preallocated buffers.

    ``gpad`` is the padded accumulation buffer (pass ``gx`` itself when
    ``padding == 0``); both are zeroed here.  Returns ``gx`` holding
    the unpadded fold, bit-identical to :func:`_col2im`.
    """
    n, c, hp, wp = gpad.shape
    kh, kw = kernel
    gpad.fill(0.0)
    patches = cols.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        for j in range(kw):
            gpad[:, :, i:i + stride * oh:stride,
                 j:j + stride * ow:stride] += patches[:, :, i, j]
    if padding:
        gx[...] = gpad[:, :, padding:hp - padding, padding:wp - padding]
        return gx
    return gpad


def _pool_windows_out(x: np.ndarray, kernel: int, stride: int,
                      win: np.ndarray) -> np.ndarray:
    """Flattened pooling windows into a preallocated buffer.

    ``win`` is C-contiguous ``(n, c, oh, ow, kernel, kernel)``; the
    returned ``(n, c, oh, ow, kernel*kernel)`` array is a free view
    with the same logical content as the ``as_strided`` window view
    (and therefore the same reduction results, bit for bit).
    """
    n, c, oh, ow, kh, kw = win.shape
    for i in range(kh):
        for j in range(kw):
            win[:, :, :, :, i, j] = x[:, :, i:i + stride * oh:stride,
                                      j:j + stride * ow:stride]
    return win.reshape(n, c, oh, ow, kh * kw)
