"""Op-tape recording hooks for the trace/compile layer.

The compile layer (:mod:`repro.nn.compile`) runs one eager step with
tracing enabled, records every op the autograd engine constructs, and
compiles the recorded tape into a flat replay schedule.  This module is
the *hook* half of that contract: it owns the (cheap) global "is a
trace active" flag the engine checks on every op, and the thread-local
tape the ops append to.

It is deliberately tiny and import-free (only stdlib + typing) so that
``tensor.py`` can import it without cycles: ``tensor._finish`` checks
``_tracing.ACTIVE`` — a module-global read, ~30ns — and only touches
the thread-local state when a trace is actually running, so the eager
hot path pays nothing when compilation is off.

Every emitted entry keeps **strong references** to the output tensor
and its parents.  This is what makes ``id()``-keyed lookups at compile
time sound: no tensor participating in the traced step can be garbage
collected (and its id reused) while the tape is alive.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Tape", "TapeEntry", "ACTIVE", "emit", "poison",
           "current_tape", "push_tape", "pop_tape"]

#: Module-global fast-path flag: True iff *some* thread has a tape
#: open.  Ops check this before touching thread-local state.
ACTIVE = False

_STATE = threading.local()


class TapeEntry:
    """One recorded op: output, inputs, and the attrs kernels need."""

    __slots__ = ("op", "out", "parents", "attrs")

    def __init__(self, op: Optional[str], out: Any,
                 parents: Tuple[Any, ...],
                 attrs: Optional[Dict[str, Any]]) -> None:
        self.op = op
        self.out = out
        self.parents = parents
        self.attrs = attrs or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TapeEntry(op={self.op!r}, out={self.out!r})"


class Tape:
    """The recorded op sequence of one traced step."""

    def __init__(self) -> None:
        self.entries: List[TapeEntry] = []
        #: name -> leaf Tensor wrapping a per-step input array.
        self.inputs: Dict[str, Any] = {}
        #: id(array) -> name for dynamic integer index arrays that
        #: appear inside op attrs (e.g. gather_rows' row index).  The
        #: arrays themselves are kept alive in ``input_arrays``.
        self.index_names: Dict[int, str] = {}
        self.input_arrays: Dict[str, Any] = {}
        #: Why this tape cannot be compiled (set by untraceable ops).
        self.poison_reason: Optional[str] = None


def current_tape() -> Optional[Tape]:
    """The tape open on *this* thread, if any."""
    return getattr(_STATE, "tape", None)


def push_tape(tape: Tape) -> None:
    # repro-check: disable=parallel-safety -- tracing state is per-process by design: a shard worker traces its own compiled program and never shares a tape with the parent
    global ACTIVE
    if current_tape() is not None:
        raise RuntimeError("a trace is already active on this thread")
    # repro-check: disable=parallel-safety -- thread/process-local trace slot; worker-side tapes are intentionally invisible to the parent
    _STATE.tape = tape
    ACTIVE = True


def pop_tape() -> Tape:
    # repro-check: disable=parallel-safety -- tracing state is per-process by design: a shard worker traces its own compiled program and never shares a tape with the parent
    global ACTIVE
    tape = current_tape()
    if tape is None:
        raise RuntimeError("no trace is active on this thread")
    # repro-check: disable=parallel-safety -- thread/process-local trace slot; worker-side tapes are intentionally invisible to the parent
    _STATE.tape = None
    ACTIVE = False
    return tape


def emit(op: Optional[str], out: Any, parents: Tuple[Any, ...],
         attrs: Optional[Dict[str, Any]]) -> None:
    """Record one op on the active tape (no-op for other threads)."""
    tape = current_tape()
    if tape is not None:
        tape.entries.append(TapeEntry(op, out, parents, attrs))


def poison(reason: str) -> None:
    """Mark the active tape as uncompilable (e.g. a stochastic op)."""
    tape = current_tape()
    if tape is not None and tape.poison_reason is None:
        tape.poison_reason = reason
