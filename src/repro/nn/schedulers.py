"""Learning-rate schedulers for the optimisers.

Schedulers mutate ``optimizer.lr`` in place when stepped, mirroring the
torch idiom.  The trainer uses :class:`LinearDecay`; the others exist
for the ablation studies and downstream users.
"""

from __future__ import annotations

import math
from .optim import Optimizer


class Scheduler:
    """Base class: tracks the step count and the base learning rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def step(self) -> float:
        """Advance one step; returns the new learning rate."""
        self.step_count += 1
        lr = self.compute_lr(self.step_count)
        self.optimizer.lr = lr
        return lr

    def compute_lr(self, step: int) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        """Restore the optimizer's original learning rate."""
        self.step_count = 0
        self.optimizer.lr = self.base_lr


class ConstantLR(Scheduler):
    """No-op scheduler (useful as a default argument)."""

    def compute_lr(self, step: int) -> float:
        return self.base_lr


class LinearDecay(Scheduler):
    """Linearly anneal from ``base_lr`` to ``final_fraction * base_lr``.

    Parameters
    ----------
    total_steps:
        Horizon over which to anneal; the lr is clamped afterwards.
    final_fraction:
        Fraction of the base lr reached at ``total_steps``.
    """

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 final_fraction: float = 0.1) -> None:
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.total_steps = total_steps
        self.final_fraction = final_fraction

    def compute_lr(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        scale = 1.0 - (1.0 - self.final_fraction) * progress
        return self.base_lr * scale


class CosineDecay(Scheduler):
    """Cosine annealing to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.total_steps = total_steps
        self.min_lr = min_lr

    def compute_lr(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class StepDecay(Scheduler):
    """Multiply the lr by ``gamma`` every ``period`` steps."""

    def __init__(self, optimizer: Optimizer, period: int,
                 gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.gamma = gamma

    def compute_lr(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.period)


class WarmupWrapper(Scheduler):
    """Linear warmup from ~0 to base lr, then defer to ``inner``."""

    def __init__(self, inner: Scheduler, warmup_steps: int) -> None:
        super().__init__(inner.optimizer)
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be >= 0")
        self.inner = inner
        self.warmup_steps = warmup_steps

    def compute_lr(self, step: int) -> float:
        if step <= self.warmup_steps and self.warmup_steps > 0:
            return self.base_lr * step / self.warmup_steps
        return self.inner.compute_lr(step - self.warmup_steps)
