"""Weight initialisation helpers.

All initialisers take an explicit :class:`numpy.random.Generator` so that
every model in the reproduction is deterministic given a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Fan-in/fan-out are computed from the first two dimensions; any further
    dimensions (convolution kernels) contribute their receptive-field size.
    """
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation for ReLU networks."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)


def constant(shape: Tuple[int, ...], value: float) -> np.ndarray:
    """Constant initialisation."""
    return np.full(shape, float(value))


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out
