"""Flat float64 views of parameter and gradient sets.

The data-parallel trainer (:mod:`repro.train.parallel`) moves
gradients and weights between processes through preallocated
``multiprocessing.shared_memory`` buffers — one contiguous float64
vector per direction, no per-step pickling.  These helpers define the
(only) layout both sides use: parameters in ``Module.parameters()``
order, each flattened C-contiguously.

Gradients need one extra bit per parameter: the optimisers treat a
``None`` gradient as "skip this parameter" (no Adam moment decay, no
weight-decay shrink), which is *not* the same as an all-zero gradient.
``write_grads`` therefore returns a presence mask alongside the packed
vector, and ``read_grads`` restores ``None`` for absent entries — so a
gradient round-trip through the flat buffer is exact, including the
skip structure, and a one-worker parallel step reproduces the
single-process step bit for bit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["flat_size", "read_grads", "read_params", "write_grads",
           "write_params"]


def flat_size(parameters: Sequence[Tensor]) -> int:
    """Total element count of the flat vector for ``parameters``."""
    return int(sum(p.data.size for p in parameters))


def _check_length(parameters: Sequence[Tensor], flat: np.ndarray,
                  what: str) -> None:
    need = flat_size(parameters)
    if flat.ndim != 1 or flat.size != need:
        raise ValueError(
            f"{what} buffer has shape {flat.shape}, expected a flat "
            f"vector of {need} elements"
        )


def write_params(parameters: Sequence[Tensor], out: np.ndarray) -> None:
    """Pack every parameter's data into the flat vector ``out``."""
    _check_length(parameters, out, "parameter")
    offset = 0
    for p in parameters:
        size = p.data.size
        out[offset:offset + size] = p.data.reshape(-1)
        offset += size


def read_params(parameters: Sequence[Tensor], flat: np.ndarray) -> None:
    """Scatter a :func:`write_params` vector back into the parameters.

    Writes in place (``p.data[...] = ...``) so array identity is
    preserved — a compiled program holding references to the parameter
    arrays keeps replaying without a retrace.
    """
    _check_length(parameters, flat, "parameter")
    offset = 0
    for p in parameters:
        size = p.data.size
        # repro-check: disable=tensor-data-mutation -- weight broadcast writes leaf tensors between steps, outside any graph
        p.data[...] = flat[offset:offset + size].reshape(p.data.shape)
        offset += size


def write_grads(parameters: Sequence[Tensor],
                out: np.ndarray) -> List[bool]:
    """Pack gradients into ``out``; returns the presence mask.

    Parameters with ``grad is None`` contribute zeros to the vector and
    ``False`` to the mask.
    """
    _check_length(parameters, out, "gradient")
    mask: List[bool] = []
    offset = 0
    for p in parameters:
        size = p.data.size
        if p.grad is None:
            out[offset:offset + size] = 0.0
            mask.append(False)
        else:
            out[offset:offset + size] = \
                np.asarray(p.grad, dtype=np.float64).reshape(-1)
            mask.append(True)
        offset += size
    return mask


def read_grads(parameters: Sequence[Tensor], flat: np.ndarray,
               mask: Optional[Sequence[bool]] = None) -> None:
    """Load a :func:`write_grads` vector into the parameters' ``.grad``.

    ``mask`` restores the ``None``-gradient structure recorded by
    :func:`write_grads`; without one, every parameter receives a
    gradient array.  Arrays are copied out of ``flat``, so the caller
    may reuse the buffer immediately.
    """
    _check_length(parameters, flat, "gradient")
    if mask is not None and len(mask) != len(parameters):
        raise ValueError(
            f"gradient mask has {len(mask)} entries for "
            f"{len(parameters)} parameters"
        )
    offset = 0
    for i, p in enumerate(parameters):
        size = p.data.size
        if mask is not None and not mask[i]:
            p.grad = None
        else:
            p.grad = flat[offset:offset + size] \
                .reshape(p.data.shape).copy()
        offset += size
