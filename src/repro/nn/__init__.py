"""Minimal numpy autograd + neural-network engine (PyTorch substitute).

Public surface:

- :class:`Tensor` and the differentiable helpers in :mod:`repro.nn.tensor`
- layers in :mod:`repro.nn.layers` (:class:`Linear`, :class:`Conv2d`,
  :class:`MLP`, ...)
- functional ops and losses in :mod:`repro.nn.functional`
- optimisers in :mod:`repro.nn.optim`
"""

from . import flat
from . import functional
from . import init
from .compile import (CompiledStep, CompileError, ReplayMismatch,
                      step_index, step_input, trace)
from .grad_mode import enable_grad, is_grad_enabled, no_grad
from .layers import (
    Conv2d,
    Flatten,
    LayerNorm,
    Linear,
    MaxPool2d,
    MLP,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .optim import Adam, Optimizer, SGD
from .schedulers import (
    ConstantLR,
    CosineDecay,
    LinearDecay,
    Scheduler,
    StepDecay,
    WarmupWrapper,
)
from .serialization import (CheckpointError, atomic_savez, load_module,
                            save_module)
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    gather_rows,
    scatter_add_rows,
    stack,
    where,
)

__all__ = [
    "Adam",
    "ConstantLR",
    "Conv2d",
    "CosineDecay",
    "Flatten",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "MLP",
    "Module",
    "Optimizer",
    "ReLU",
    "LinearDecay",
    "SGD",
    "Scheduler",
    "Sequential",
    "StepDecay",
    "WarmupWrapper",
    "Sigmoid",
    "Tanh",
    "Tensor",
    "as_tensor",
    "concatenate",
    "enable_grad",
    "flat",
    "functional",
    "gather_rows",
    "init",
    "is_grad_enabled",
    "CheckpointError",
    "atomic_savez",
    "load_module",
    "no_grad",
    "save_module",
    "scatter_add_rows",
    "stack",
    "where",
    "CompiledStep",
    "CompileError",
    "ReplayMismatch",
    "trace",
    "step_input",
    "step_index",
]
