"""Gradient-descent optimisers for the autograd engine."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear every parameter's gradient buffer."""
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # -- state dict ----------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Snapshot of hyper-parameters and per-parameter buffers.

        Scalars plus lists of ndarrays (position-aligned with
        ``self.parameters``); no Tensors, so the dict is directly
        persistable.  ``kind`` records the concrete class so a snapshot
        can never be loaded into the wrong optimiser.
        """
        return {"kind": type(self).__name__}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Raises ``ValueError`` on a kind mismatch or a buffer whose
        length/shape disagrees with the current parameter list, and
        ``KeyError`` naming any missing field — always *before* any
        internal state is mutated.
        """
        kind = state.get("kind")
        if kind != type(self).__name__:
            raise ValueError(
                f"optimizer state dict is for {kind!r}, cannot load "
                f"into {type(self).__name__}"
            )

    def _checked_buffers(self, state: Mapping[str, Any], key: str
                         ) -> List[Optional[np.ndarray]]:
        """Validate + copy one per-parameter buffer list from ``state``."""
        buffers = state[key]
        if len(buffers) != len(self.parameters):
            raise ValueError(
                f"optimizer buffer {key!r} has {len(buffers)} entries "
                f"for {len(self.parameters)} parameters"
            )
        out: List[Optional[np.ndarray]] = []
        for i, (buf, p) in enumerate(zip(buffers, self.parameters)):
            if buf is None:
                out.append(None)
                continue
            buf = np.asarray(buf)
            if buf.shape != p.data.shape:
                raise ValueError(
                    f"optimizer buffer {key}[{i}] has shape {buf.shape}, "
                    f"parameter has {p.data.shape}"
                )
            out.append(buf.copy())
        return out

    def load_flat_grads(self, flat: np.ndarray,
                        mask: Optional[Sequence[bool]] = None) -> None:
        """Adopt externally computed gradients from a flat vector.

        The entry point for data-parallel training: the parent process
        averages per-shard gradient buffers (packed by
        :func:`repro.nn.flat.write_grads`) and hands the result here,
        after which :meth:`clip_grad_norm` and :meth:`step` behave
        exactly as if the gradients came from a local ``backward()``.
        ``mask`` preserves the ``None``-gradient skip structure — see
        :mod:`repro.nn.flat`.
        """
        from .flat import read_grads

        read_grads(self.parameters, flat, mask)

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most ``max_norm``.

        Returns the norm before clipping.
        """
        total = 0.0
        for p in self.parameters:
            if p.grad is not None:
                total += float((p.grad ** 2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0.0:
            scale = max_norm / norm
            for p in self.parameters:
                if p.grad is not None:
                    p.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data -= self.lr * grad

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state.update(
            lr=float(self.lr), momentum=float(self.momentum),
            weight_decay=float(self.weight_decay),
            velocity=[None if v is None else v.copy()
                      for v in self._velocity],
        )
        return state

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        super().load_state_dict(state)
        velocity = self._checked_buffers(state, "velocity")
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        self._velocity = velocity


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad ** 2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state.update(
            lr=float(self.lr), beta1=float(self.beta1),
            beta2=float(self.beta2), eps=float(self.eps),
            weight_decay=float(self.weight_decay), t=int(self._t),
            m=[m.copy() for m in self._m],
            v=[v.copy() for v in self._v],
        )
        return state

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        super().load_state_dict(state)
        m = self._checked_buffers(state, "m")
        v = self._checked_buffers(state, "v")
        if any(buf is None for buf in m + v):
            raise ValueError("Adam moment buffers cannot be None")
        self.lr = float(state["lr"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self._t = int(state["t"])
        self._m = m
        self._v = v
