"""Gradient-descent optimisers for the autograd engine."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear every parameter's gradient buffer."""
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most ``max_norm``.

        Returns the norm before clipping.
        """
        total = 0.0
        for p in self.parameters:
            if p.grad is not None:
                total += float((p.grad ** 2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0.0:
            scale = max_norm / norm
            for p in self.parameters:
                if p.grad is not None:
                    p.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad ** 2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
