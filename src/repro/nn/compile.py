"""Trace-once / replay-many compilation of the training step.

The autograd engine rebuilds an identical graph every training step:
Tensor wrappers, parent tuples, and backward closures are allocated and
garbage-collected thousands of times over a topology that never
changes.  This module removes that steady-state overhead:

1. **Trace** — run one eager step inside :func:`trace`.  Every op the
   engine constructs is appended to a :class:`~repro.nn._tracing.Tape`
   (op name, output tensor, parents, attrs) in construction order,
   which is a valid topological order of the forward graph.
2. **Compile** — :class:`CompiledStep` filters the tape to the
   ancestors of the requested outputs, adopts the traced tensors'
   ``.data`` arrays as its preallocated forward buffers, allocates a
   gradient buffer per node, and builds two flat schedules of no-arg
   numpy closures: the forward ops (``out=`` kernels writing in place)
   and the backward ops in **exactly the order the eager engine's DFS
   would process them**.
3. **Replay** — copy the per-step inputs into their fixed buffers, run
   the forward list, seed the root gradient, run the backward list,
   and hand the accumulated leaf gradients to the optimizer.  No
   Tensor graph, no closures built per step, no steady-state
   allocation on the schedule itself.

Bit-for-bit equivalence with eager execution is a hard contract (it is
what keeps eager and compiled checkpoints interchangeable): every
kernel performs the same numpy arithmetic in the same order as the op
closure it replaces, gradient accumulation mirrors the engine's
first-contribution-assigns / later-contributions-add semantics, and
the backward schedule replicates ``Tensor.backward``'s DFS ordering.
``repro check`` enforces the contract per op (see
``repro.check.gradcheck.check_compiled``).

**Buffer ownership.**  Forward buffers are the traced tensors' own
``.data`` arrays, so view relationships recorded during the trace
(reshape/transpose/basic slicing) stay live: writing a parent buffer
in place updates every aliased child for free, and such alias ops cost
nothing at replay.  Per-step inputs are *copied into* their fixed
buffers (never rebound), which is what keeps those views valid.
Parameters are read through their live ``Tensor.data`` arrays; a
replay verifies the arrays were not rebound and raises
:class:`ReplayMismatch` (a retrace trigger) otherwise.

**float32 mode.**  ``dtype="float32"`` re-allocates every buffer in
single precision, casts constants once at compile time and parameters
on every replay, and casts leaf gradients back to float64 for the
optimizer.  Alias ops degrade to copies (the float32 buffers no longer
share memory).  Loss values typically agree with float64 eager to
~1e-5 relative; see DESIGN.md §11 for measured tolerances.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import _tracing
from . import functional as F
from ._tracing import Tape, TapeEntry
from .tensor import Tensor, _unbroadcast

__all__ = [
    "CompileError", "ReplayMismatch", "CompiledStep", "trace",
    "step_input", "step_index", "KERNELS", "PRIMITIVE_OPS",
    "COMPOSITE_OPS", "UNTRACEABLE_OPS", "TraceOp", "tape_metadata",
]


class CompileError(RuntimeError):
    """The traced tape cannot be compiled (unknown/stochastic op...)."""


class ReplayMismatch(CompileError):
    """Replay-time state no longer matches the compiled program.

    Raised when a parameter array was rebound or an input's shape
    changed; callers should fall back to eager and retrace.
    """


# ----------------------------------------------------------------------
# Tracing front end
# ----------------------------------------------------------------------
@contextmanager
def trace():
    """Record every op built inside the block onto a fresh tape."""
    tape = Tape()
    _tracing.push_tape(tape)
    try:
        yield tape
    finally:
        _tracing.pop_tape()


def step_input(name: str, array: np.ndarray) -> Tensor:
    """Wrap a per-step input array as a leaf tensor, named for replay.

    During a trace the tensor is registered on the tape under ``name``;
    replays copy the step's fresh value into the (fixed) buffer.
    Outside a trace this is just ``Tensor(array)``.
    """
    tensor = Tensor(np.asarray(array, dtype=np.float64))
    tape = _tracing.current_tape()
    if tape is not None:
        if name in tape.inputs:
            raise CompileError(f"duplicate step input {name!r}")
        tape.inputs[name] = tensor
    return tensor


def step_index(name: str, index: np.ndarray) -> np.ndarray:
    """Register a per-step integer index array (op attr, not a tensor).

    Ops that consume the *returned* array as an attr (``gather_rows``)
    get a dynamic index buffer in the compiled program, refreshed from
    the replay inputs under ``name``.
    """
    idx = np.asarray(index, dtype=np.int64)
    tape = _tracing.current_tape()
    if tape is not None:
        if name in tape.input_arrays or name in tape.inputs:
            raise CompileError(f"duplicate step input {name!r}")
        tape.index_names[id(idx)] = name
        tape.input_arrays[name] = idx
    return idx


# ----------------------------------------------------------------------
# Kernel registry
# ----------------------------------------------------------------------
class _OpCtx:
    """Everything a kernel builder needs about one tape entry."""

    __slots__ = ("op", "out", "ins", "accs", "attrs", "dtype", "f64")

    def __init__(self, op: str, out: np.ndarray, ins: List[np.ndarray],
                 accs: List[Optional[Callable]], attrs: Dict[str, Any],
                 dtype: np.dtype) -> None:
        self.op = op
        self.out = out
        self.ins = ins
        self.accs = accs
        self.attrs = attrs
        self.dtype = dtype
        self.f64 = dtype == np.float64


#: op name -> {"fwd": builder, "bwd": builder}.  Builders take an
#: :class:`_OpCtx` and return a no-arg forward callable (or ``None``
#: for a free alias) / a one-arg ``fn(grad)`` backward callable.
KERNELS: Dict[str, Dict[str, Callable[[_OpCtx], Optional[Callable]]]] = {}


def _kernel(op: str):
    def register(builder_pair):
        fwd, bwd = builder_pair()
        KERNELS[op] = {"fwd": fwd, "bwd": bwd}
        return builder_pair
    return register


def _maybe_alias(k: _OpCtx) -> bool:
    """True when the traced out buffer is already a live view of in[0]."""
    return k.f64 and np.shares_memory(k.out, k.ins[0])


@_kernel("add")
def _op_add():
    def fwd(k):
        a, b, out = k.ins[0], k.ins[1], k.out
        return lambda: np.add(a, b, out=out)

    def bwd(k):
        (a, b), (acc_a, acc_b) = k.ins, k.accs
        a_shape, b_shape = a.shape, b.shape

        def fn(g):
            if acc_a is not None:
                acc_a(_unbroadcast(g, a_shape))
            if acc_b is not None:
                acc_b(_unbroadcast(g, b_shape))
        return fn
    return fwd, bwd


@_kernel("mul")
def _op_mul():
    def fwd(k):
        a, b, out = k.ins[0], k.ins[1], k.out
        return lambda: np.multiply(a, b, out=out)

    def bwd(k):
        (a, b), (acc_a, acc_b) = k.ins, k.accs
        a_shape, b_shape = a.shape, b.shape

        def fn(g):
            if acc_a is not None:
                acc_a(_unbroadcast(g * b, a_shape))
            if acc_b is not None:
                acc_b(_unbroadcast(g * a, b_shape))
        return fn
    return fwd, bwd


@_kernel("neg")
def _op_neg():
    def fwd(k):
        a, out = k.ins[0], k.out
        return lambda: np.negative(a, out=out)

    def bwd(k):
        acc = k.accs[0]
        return lambda g: acc(-g)
    return fwd, bwd


@_kernel("truediv")
def _op_truediv():
    def fwd(k):
        a, b, out = k.ins[0], k.ins[1], k.out
        return lambda: np.divide(a, b, out=out)

    def bwd(k):
        (a, b), (acc_a, acc_b) = k.ins, k.accs
        a_shape, b_shape = a.shape, b.shape

        def fn(g):
            if acc_a is not None:
                acc_a(_unbroadcast(g / b, a_shape))
            if acc_b is not None:
                acc_b(_unbroadcast(-g * a / (b ** 2), b_shape))
        return fn
    return fwd, bwd


@_kernel("pow")
def _op_pow():
    def fwd(k):
        a, out = k.ins[0], k.out
        exponent = k.attrs["exponent"]

        # ``a ** e`` (not np.power(a, e, out=...)): ndarray.__pow__ has
        # fast paths (e == 2, 0.5, ...) the ufunc call skips, and bit
        # parity with the eager op matters more than the temporary.
        def f():
            out[...] = a ** exponent
        return f

    def bwd(k):
        a, acc = k.ins[0], k.accs[0]
        exponent = k.attrs["exponent"]
        return lambda g: acc(g * exponent * a ** (exponent - 1))
    return fwd, bwd


@_kernel("matmul")
def _op_matmul():
    def fwd(k):
        a, b, out = k.ins[0], k.ins[1], k.out
        if a.ndim >= 2 and b.ndim >= 2:
            return lambda: np.matmul(a, b, out=out)

        def f():
            out[...] = a @ b
        return f

    def bwd(k):
        (a, b), (acc_a, acc_b) = k.ins, k.accs
        a_shape, b_shape = a.shape, b.shape

        def fn(g):
            if acc_a is not None:
                if b.ndim == 1:
                    g_a = np.outer(g, b) if g.ndim == 1 \
                        else g[..., None] * b
                else:
                    g_a = g @ np.swapaxes(b, -1, -2)
                acc_a(_unbroadcast(np.asarray(g_a), a_shape))
            if acc_b is not None:
                if a.ndim == 1:
                    g_b = np.outer(a, g) if g.ndim == 1 \
                        else a[..., None] @ g[..., None, :]
                else:
                    g_b = np.swapaxes(a, -1, -2) @ g
                acc_b(_unbroadcast(np.asarray(g_b), b_shape))
        return fn
    return fwd, bwd


@_kernel("sum")
def _op_sum():
    def fwd(k):
        a, out = k.ins[0], k.out
        axis, keepdims = k.attrs["axis"], k.attrs["keepdims"]
        return lambda: a.sum(axis=axis, keepdims=keepdims, out=out)

    def bwd(k):
        a, acc = k.ins[0], k.accs[0]
        axis, keepdims = k.attrs["axis"], k.attrs["keepdims"]
        a_shape = a.shape

        def fn(g):
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            acc(np.broadcast_to(g, a_shape))
        return fn
    return fwd, bwd


@_kernel("max")
def _op_max():
    def fwd(k):
        a, out = k.ins[0], k.out
        axis, keepdims = k.attrs["axis"], k.attrs["keepdims"]
        return lambda: a.max(axis=axis, keepdims=keepdims, out=out)

    def bwd(k):
        a, out, acc = k.ins[0], k.out, k.accs[0]
        axis, keepdims = k.attrs["axis"], k.attrs["keepdims"]

        def fn(g):
            expanded = out
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out, axis=axis)
            mask = (a == expanded).astype(a.dtype)
            denom = mask.sum(axis=axis, keepdims=True) \
                if axis is not None else mask.sum()
            acc(mask * g / denom)
        return fn
    return fwd, bwd


@_kernel("reshape")
def _op_reshape():
    def fwd(k):
        if _maybe_alias(k):
            return None
        a, out = k.ins[0], k.out

        def f():
            out[...] = a.reshape(out.shape)
        return f

    def bwd(k):
        acc = k.accs[0]
        a_shape = k.ins[0].shape
        return lambda g: acc(g.reshape(a_shape))
    return fwd, bwd


@_kernel("transpose")
def _op_transpose():
    def fwd(k):
        if _maybe_alias(k):
            return None
        a, out = k.ins[0], k.out
        axes = k.attrs["axes"]

        def f():
            out[...] = a.transpose(axes)
        return f

    def bwd(k):
        acc = k.accs[0]
        axes = k.attrs["axes"]
        inverse = None if axes is None else tuple(np.argsort(axes))

        def fn(g):
            if inverse is None:
                acc(g.transpose())
            else:
                acc(g.transpose(inverse))
        return fn
    return fwd, bwd


@_kernel("getitem")
def _op_getitem():
    def fwd(k):
        if _maybe_alias(k):
            return None
        a, out = k.ins[0], k.out
        index = k.attrs["index"]

        def f():
            out[...] = a[index]
        return f

    def bwd(k):
        a, acc = k.ins[0], k.accs[0]
        index = k.attrs["index"]
        full = np.zeros(a.shape, dtype=a.dtype)

        def fn(g):
            full.fill(0.0)
            np.add.at(full, index, g)
            acc(full)
        return fn
    return fwd, bwd


def _make_unary(forward_inplace, backward_expr):
    def fwd(k):
        a, out = k.ins[0], k.out
        return lambda: forward_inplace(a, out)

    def bwd(k):
        a, out, acc = k.ins[0], k.out, k.accs[0]
        return lambda g: acc(backward_expr(g, a, out))
    return fwd, bwd


@_kernel("relu")
def _op_relu():
    return _make_unary(
        lambda a, out: np.maximum(a, 0.0, out=out),
        lambda g, a, out: g * (a > 0),
    )


@_kernel("tanh")
def _op_tanh():
    return _make_unary(
        lambda a, out: np.tanh(a, out=out),
        lambda g, a, out: g * (1.0 - out ** 2),
    )


@_kernel("sigmoid")
def _op_sigmoid():
    def _sigmoid_out(a, out):
        # Mirrors 1 / (1 + exp(-clip(a))) step for step.
        np.clip(a, -60.0, 60.0, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.divide(1.0, out, out=out)
    return _make_unary(
        _sigmoid_out,
        lambda g, a, out: g * out * (1.0 - out),
    )


@_kernel("exp")
def _op_exp():
    def _exp_out(a, out):
        np.clip(a, -700.0, 700.0, out=out)
        np.exp(out, out=out)
    return _make_unary(_exp_out, lambda g, a, out: g * out)


@_kernel("log")
def _op_log():
    return _make_unary(
        lambda a, out: np.log(a, out=out),
        lambda g, a, out: g / a,
    )


@_kernel("softplus")
def _op_softplus():
    def _softplus_out(a, out):
        out[...] = np.where(a > 30.0,
                            a, np.log1p(np.exp(np.minimum(a, 30.0))))

    def _grad(g, a, out):
        sig = 1.0 / (1.0 + np.exp(-np.clip(a, -60.0, 60.0)))
        return g * sig
    return _make_unary(_softplus_out, _grad)


@_kernel("abs")
def _op_abs():
    return _make_unary(
        lambda a, out: np.abs(a, out=out),
        lambda g, a, out: g * np.sign(a),
    )


@_kernel("clip")
def _op_clip():
    def fwd(k):
        a, out = k.ins[0], k.out
        low, high = k.attrs["low"], k.attrs["high"]
        return lambda: np.clip(a, low, high, out=out)

    def bwd(k):
        a, acc = k.ins[0], k.accs[0]
        low, high = k.attrs["low"], k.attrs["high"]
        return lambda g: acc(g * ((a >= low) & (a <= high)))
    return fwd, bwd


@_kernel("log_softmax")
def _op_log_softmax():
    def fwd(k):
        a, out = k.ins[0], k.out
        axis = k.attrs["axis"]
        return lambda: F._log_softmax_raw(a, axis, out=out)

    def bwd(k):
        out, acc = k.out, k.accs[0]
        axis = k.attrs["axis"]

        def fn(g):
            softm = np.exp(out)
            acc(g - softm * g.sum(axis=axis, keepdims=True))
        return fn
    return fwd, bwd


@_kernel("concatenate")
def _op_concatenate():
    def _part_slices(k):
        axis = k.attrs["axis"]
        offsets = np.cumsum([0] + list(k.attrs["sizes"]))
        ndim = k.out.ndim
        slices = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            index = [slice(None)] * ndim
            index[axis] = slice(int(start), int(stop))
            slices.append(tuple(index))
        return slices

    def fwd(k):
        parts, out = list(k.ins), k.out
        slices = _part_slices(k)

        def f():
            for part, sl in zip(parts, slices):
                out[sl] = part
        return f

    def bwd(k):
        accs = list(k.accs)
        slices = _part_slices(k)

        def fn(g):
            for acc, sl in zip(accs, slices):
                if acc is not None:
                    acc(g[sl])
        return fn
    return fwd, bwd


@_kernel("stack")
def _op_stack():
    def fwd(k):
        parts, out = list(k.ins), k.out
        axis = k.attrs["axis"]
        prefix = (slice(None),) * axis
        slots = [prefix + (i,) for i in range(len(parts))]

        def f():
            for part, sl in zip(parts, slots):
                out[sl] = part
        return f

    def bwd(k):
        accs = list(k.accs)
        axis = k.attrs["axis"]
        count = len(k.ins)

        def fn(g):
            pieces = np.split(g, count, axis=axis)
            for acc, piece in zip(accs, pieces):
                if acc is not None:
                    acc(np.squeeze(piece, axis=axis))
        return fn
    return fwd, bwd


@_kernel("where")
def _op_where():
    def fwd(k):
        a, b, out = k.ins[0], k.ins[1], k.out
        cond = k.attrs["cond"]

        def f():
            out[...] = np.where(cond, a, b)
        return f

    def bwd(k):
        (a, b), (acc_a, acc_b) = k.ins, k.accs
        cond = k.attrs["cond"]
        a_shape, b_shape = a.shape, b.shape

        def fn(g):
            if acc_a is not None:
                acc_a(_unbroadcast(g * cond, a_shape))
            if acc_b is not None:
                acc_b(_unbroadcast(g * (~cond), b_shape))
        return fn
    return fwd, bwd


@_kernel("gather_rows")
def _op_gather_rows():
    def fwd(k):
        a, out = k.ins[0], k.out
        idx = k.attrs["index"]

        def f():
            out[...] = a[idx]
        return f

    def bwd(k):
        a, acc = k.ins[0], k.accs[0]
        idx = k.attrs["index"]
        full = np.zeros(a.shape, dtype=a.dtype)

        def fn(g):
            full.fill(0.0)
            np.add.at(full, idx, g)
            acc(full)
        return fn
    return fwd, bwd


@_kernel("scatter_add_rows")
def _op_scatter_add_rows():
    def fwd(k):
        a, out = k.ins[0], k.out
        idx = k.attrs["index"]

        def f():
            out.fill(0.0)
            np.add.at(out, idx, a)
        return f

    def bwd(k):
        acc = k.accs[0]
        idx = k.attrs["index"]
        return lambda g: acc(g[idx])
    return fwd, bwd


@_kernel("conv2d")
def _op_conv2d():
    def _geometry(k):
        x, w = k.ins[0], k.ins[1]
        stride, padding = k.attrs["stride"], k.attrs["padding"]
        n, c, h, wdt = x.shape
        c_out, c_in, kh, kw = w.shape
        hp, wp = h + 2 * padding, wdt + 2 * padding
        oh = (hp - kh) // stride + 1
        ow = (wp - kw) // stride + 1
        return n, c, h, wdt, c_out, kh, kw, hp, wp, oh, ow

    def fwd(k):
        x, w = k.ins[0], k.ins[1]
        bias = k.ins[2] if k.attrs["has_bias"] else None
        stride, padding = k.attrs["stride"], k.attrs["padding"]
        legacy = k.attrs["legacy"]
        n, c, _, _, c_out, kh, kw, hp, wp, oh, ow = _geometry(k)
        # Padded staging buffer: borders zeroed once, interior is
        # rewritten per replay (matches np.pad's zero fill).
        xpad = np.zeros((n, c, hp, wp), dtype=k.dtype) if padding else x
        cols6 = np.empty((n, c, kh, kw, oh, ow), dtype=k.dtype)
        k.attrs["_cols6"] = cols6   # shared with the backward kernel
        out3 = k.out.reshape(n, c_out, oh * ow)
        wmat = w.reshape(c_out, c * kh * kw)

        def f():
            cols = F._im2col_out(x, (kh, kw), stride, padding, xpad, cols6)
            if legacy:
                np.einsum("ok,nkl->nol", wmat, cols, out=out3)
            else:
                np.matmul(wmat, cols, out=out3)
            if bias is not None:
                np.add(out3, bias[None, :, None], out=out3)
        return f

    def bwd(k):
        x, w = k.ins[0], k.ins[1]
        acc_x, acc_w = k.accs[0], k.accs[1]
        acc_b = k.accs[2] if k.attrs["has_bias"] else None
        stride, padding = k.attrs["stride"], k.attrs["padding"]
        legacy = k.attrs["legacy"]
        n, c, h, wdt, c_out, kh, kw, hp, wp, oh, ow = _geometry(k)
        ckk = c * kh * kw
        cols6 = k.attrs["_cols6"]
        cols = cols6.reshape(n, ckk, oh * ow)
        wmat = w.reshape(c_out, ckk)
        w_shape = w.shape
        gcols = np.empty((n, ckk, oh * ow), dtype=k.dtype) \
            if acc_x is not None else None
        if acc_x is not None:
            gx = np.empty((n, c, h, wdt), dtype=k.dtype)
            gpad = np.empty((n, c, hp, wp), dtype=k.dtype) if padding else gx
        else:
            gx = gpad = None

        def fn(g):
            g3 = g.reshape(n, c_out, oh * ow)
            if acc_w is not None:
                if legacy:
                    g_w = np.einsum("nol,nkl->ok", g3, cols)
                else:
                    g_w = np.matmul(g3, cols.transpose(0, 2, 1)).sum(axis=0)
                acc_w(g_w.reshape(w_shape))
            if acc_b is not None:
                acc_b(g3.sum(axis=(0, 2)))
            if acc_x is not None:
                if legacy:
                    np.einsum("ok,nol->nkl", wmat, g3, out=gcols)
                else:
                    np.matmul(wmat.T, g3, out=gcols)
                acc_x(F._col2im_out(gcols, (kh, kw), stride, padding,
                                    oh, ow, gpad, gx))
        return fn
    return fwd, bwd


@_kernel("max_pool2d")
def _op_max_pool2d():
    def fwd(k):
        x, out = k.ins[0], k.out
        kernel, stride = k.attrs["kernel"], k.attrs["stride"]
        n, c, oh, ow = out.shape
        win = np.empty((n, c, oh, ow, kernel, kernel), dtype=k.dtype)
        arg = np.empty((n, c, oh, ow), dtype=np.intp)
        k.attrs["_arg"] = arg   # shared with the backward kernel

        def f():
            flat = F._pool_windows_out(x, kernel, stride, win)
            np.argmax(flat, axis=-1, out=arg)
            out[...] = np.take_along_axis(flat, arg[..., None],
                                          axis=-1)[..., 0]
        return f

    def bwd(k):
        x, out, acc = k.ins[0], k.out, k.accs[0]
        kernel, stride = k.attrs["kernel"], k.attrs["stride"]
        legacy = k.attrs["legacy"]
        n, c, h, w = x.shape
        _, _, oh, ow = out.shape
        arg = k.attrs["_arg"]
        gx = np.empty((n, c, h, w), dtype=k.dtype)

        def fn(g):
            gx.fill(0.0)
            ki, kj = np.divmod(arg, kernel)
            if legacy or stride < kernel:
                n_i, c_i, oh_i, ow_i = np.indices((n, c, oh, ow))
                rows = oh_i * stride + ki
                cols_ = ow_i * stride + kj
                np.add.at(gx, (n_i, c_i, rows, cols_), g)
            else:
                rows = np.arange(oh)[None, None, :, None] * stride + ki
                cols_ = np.arange(ow)[None, None, None, :] * stride + kj
                chan = (np.arange(n)[:, None, None, None] * c
                        + np.arange(c)[None, :, None, None])
                gx.ravel()[(chan * h + rows) * w + cols_] = g
            acc(gx)
        return fn
    return fwd, bwd


@_kernel("avg_pool2d")
def _op_avg_pool2d():
    def fwd(k):
        x, out = k.ins[0], k.out
        kernel, stride = k.attrs["kernel"], k.attrs["stride"]
        n, c, oh, ow = out.shape
        # The eager op reduces over an as_strided window view; reducing
        # over a contiguous copy changes numpy's pairwise-summation
        # blocking and costs ~1e-16 relative drift.  Input buffers are
        # fixed for the program's lifetime, so the identical view can
        # be built once here and reused every replay — bit-exact and
        # copy-free.
        strides = x.strides
        shape = (n, c, oh, ow, kernel, kernel)
        view_strides = (strides[0], strides[1], strides[2] * stride,
                        strides[3] * stride, strides[2], strides[3])
        windows = np.lib.stride_tricks.as_strided(x, shape=shape,
                                                  strides=view_strides)
        return lambda: np.mean(windows, axis=(-1, -2), out=out)

    def bwd(k):
        x, out, acc = k.ins[0], k.out, k.accs[0]
        kernel, stride = k.attrs["kernel"], k.attrs["stride"]
        n, c, h, w = x.shape
        _, _, oh, ow = out.shape
        scale = 1.0 / (kernel * kernel)
        gx = np.empty((n, c, h, w), dtype=k.dtype)

        def fn(g):
            gx.fill(0.0)
            gg = g * scale
            for i in range(kernel):
                for j in range(kernel):
                    gx[:, :, i:i + stride * oh:stride,
                       j:j + stride * ow:stride] += gg
            acc(gx)
        return fn
    return fwd, bwd


@_kernel("levelized_sweep")
def _op_levelized_sweep():
    def _steps(k):
        steps = k.attrs["plan"].steps
        if k.f64:
            return steps
        cast = []
        for step in steps:
            cast.append({
                key: (value.astype(k.dtype)
                      if key.endswith("_inv_count") else value)
                for key, value in step.items()
            })
        return cast

    def fwd(k):
        s, wn, wc = k.ins[0], k.ins[1], k.ins[2]
        h = k.out
        level0 = k.attrs["level0"]
        steps = _steps(k)
        hidden = s.shape[1]

        def f():
            h.fill(0.0)
            if level0.size:
                h[level0] = np.maximum(s[level0], 0.0)
            for step in steps:
                dst = step["dst"]
                total = s[dst].copy()
                for kind, w in (("net", wn), ("cell", wc)):
                    src = step[f"{kind}_src"]
                    if src.size == 0:
                        continue
                    msgs = h[src] @ w
                    agg = np.zeros((len(dst), hidden), dtype=s.dtype)
                    np.add.at(agg, step[f"{kind}_dst_local"], msgs)
                    total += agg * step[f"{kind}_inv_count"]
                h[dst] = np.maximum(total, 0.0)
        return f

    def bwd(k):
        s, wn, wc = k.ins[0], k.ins[1], k.ins[2]
        h = k.out
        acc_s, acc_wn, acc_wc = k.accs
        level0 = k.attrs["level0"]
        steps = _steps(k)
        grad_h = np.empty_like(h)
        grad_s = np.empty_like(s) if acc_s is not None else None
        grad_wn = np.empty_like(wn) if acc_wn is not None else None
        grad_wc = np.empty_like(wc) if acc_wc is not None else None

        def fn(g):
            np.copyto(grad_h, g)
            if grad_s is not None:
                grad_s.fill(0.0)
            if grad_wn is not None:
                grad_wn.fill(0.0)
            if grad_wc is not None:
                grad_wc.fill(0.0)
            for step in reversed(steps):
                dst = step["dst"]
                grad_total = grad_h[dst] * (h[dst] > 0.0)
                if grad_s is not None:
                    grad_s[dst] += grad_total
                for kind, w, grad_w in (("net", wn, grad_wn),
                                        ("cell", wc, grad_wc)):
                    src = step[f"{kind}_src"]
                    if src.size == 0:
                        continue
                    grad_agg = grad_total * step[f"{kind}_inv_count"]
                    grad_msgs = grad_agg[step[f"{kind}_dst_local"]]
                    if grad_w is not None:
                        grad_w += h[src].T @ grad_msgs
                    np.add.at(grad_h, src, grad_msgs @ w.T)
            if level0.size:
                grad_level0 = grad_h[level0] * (h[level0] > 0.0)
                if grad_s is not None:
                    grad_s[level0] += grad_level0
            if acc_s is not None:
                acc_s(grad_s)
            if acc_wn is not None:
                acc_wn(grad_wn)
            if acc_wc is not None:
                acc_wc(grad_wc)
        return fn
    return fwd, bwd


#: Ops with a compiled kernel (the tape compiles them directly).
PRIMITIVE_OPS = frozenset(KERNELS)
#: Public ``repro.nn.functional`` ops that trace *through* primitives.
COMPOSITE_OPS = frozenset({
    "softmax", "mse_loss", "mae_loss", "gaussian_nll", "huber_loss",
    "global_avg_pool2d",
    # K-node alignment losses (repro.model.losses): pure compositions
    # of primitives, traced through like any other expression.
    "node_contrastive_loss_multi", "cmd_loss_multi",
})
#: Ops that legitimately poison a trace (stochastic per call).
UNTRACEABLE_OPS = frozenset({"dropout"})


# ----------------------------------------------------------------------
# Trace metadata (consumed by the static tensor-contract checker)
# ----------------------------------------------------------------------
class TraceOp:
    """Shape/dtype metadata of one recorded op, detached from buffers.

    The static contract checker (:mod:`repro.check.contracts`)
    abstractly interprets a tape through these records — no replay, no
    gradient step — so the record carries everything a shape/dtype
    contract can talk about and nothing that keeps tensors alive.
    ``aliases[i]`` is True when the recorded output buffer shares
    memory with input ``i`` (views are expected to alias; anything
    else doing so is a hazard the checker flags).
    """

    __slots__ = ("op", "out_shape", "out_dtype", "in_shapes", "in_dtypes",
                 "attrs", "aliases", "index")

    def __init__(self, op: str, out_shape, out_dtype, in_shapes,
                 in_dtypes, attrs, aliases, index: int) -> None:
        self.op = op
        self.out_shape = tuple(out_shape)
        self.out_dtype = np.dtype(out_dtype)
        self.in_shapes = tuple(tuple(s) for s in in_shapes)
        self.in_dtypes = tuple(np.dtype(d) for d in in_dtypes)
        self.attrs = attrs
        self.aliases = tuple(aliases)
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceOp({self.op!r}, out={self.out_shape}"
                f":{self.out_dtype}, ins={len(self.in_shapes)})")


#: Raised by np.shares_memory when the exact overlap problem exceeds
#: max_work; spelled np.TooHardError on older numpy.
_TooHardError = getattr(getattr(np, "exceptions", np), "TooHardError",
                        ValueError)


def _shares(out: np.ndarray, parent: np.ndarray) -> bool:
    try:
        return bool(np.shares_memory(out, parent, max_work=10_000))
    except _TooHardError:  # pragma: no cover - exact check too expensive
        return bool(np.may_share_memory(out, parent))


def tape_metadata(tape: Tape) -> List["TraceOp"]:
    """Per-op shape/dtype records for a recorded tape.

    This is the read-only export surface the whole-program checker
    consumes: each entry's output/input shapes, dtypes, op attrs, and
    whether the output buffer aliases an input buffer.
    """
    records: List[TraceOp] = []
    for index, entry in enumerate(tape.entries):
        if entry.op is None:
            continue
        out = entry.out.data
        parents = [p.data for p in entry.parents]
        records.append(TraceOp(
            op=entry.op,
            out_shape=out.shape,
            out_dtype=out.dtype,
            in_shapes=[p.shape for p in parents],
            in_dtypes=[p.dtype for p in parents],
            attrs=dict(entry.attrs),
            aliases=[_shares(out, p) for p in parents],
            index=index,
        ))
    return records


# ----------------------------------------------------------------------
# The compiled program
# ----------------------------------------------------------------------
class _GradSlot:
    __slots__ = ("buf", "gen")

    def __init__(self, buf: np.ndarray) -> None:
        self.buf = buf
        self.gen = -1


class CompiledStep:
    """A traced step compiled to flat forward/backward numpy schedules.

    Parameters
    ----------
    tape:
        The tape recorded by :func:`trace` around one eager step.
    root:
        The scalar loss tensor whose backward the program replays.
    outputs:
        ``name -> Tensor`` values to read back after each replay.
    dtype:
        ``"float64"`` (bit-exact vs eager) or ``"float32"``.
    """

    def __init__(self, tape: Tape, root: Tensor,
                 outputs: Optional[Dict[str, Tensor]] = None,
                 dtype: str = "float64") -> None:
        if tape.poison_reason is not None:
            raise CompileError(
                f"tape cannot be compiled: {tape.poison_reason}")
        if root.data.size != 1:
            raise CompileError("root of a compiled step must be a scalar")
        if not root.requires_grad:
            raise CompileError("root of a compiled step requires no grad")
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise CompileError(f"unsupported compile dtype {dtype!r}")
        f64 = self.dtype == np.dtype(np.float64)
        outputs = dict(outputs or {})

        entry_of: Dict[int, TapeEntry] = {id(e.out): e for e in tape.entries}
        if id(root) not in entry_of:
            raise CompileError("root tensor was not produced by the trace")

        # -- ancestor filter -------------------------------------------
        needed: set = set()
        leaves: Dict[int, Tensor] = {}
        pending: List[Tensor] = [root] + list(outputs.values())
        while pending:
            t = pending.pop()
            key = id(t)
            if key in needed or key in leaves:
                continue
            entry = entry_of.get(key)
            if entry is None:
                leaves[key] = t
            else:
                needed.add(key)
                pending.extend(entry.parents)
        schedule = [e for e in tape.entries if id(e.out) in needed]
        for entry in schedule:
            if entry.op not in KERNELS:
                raise CompileError(
                    f"op {entry.op!r} has no compiled kernel; register "
                    "one in repro.nn.compile.KERNELS or classify it")

        # -- forward buffers -------------------------------------------
        self._buf: Dict[int, np.ndarray] = {}
        for key, t in leaves.items():
            self._buf[key] = t.data if f64 else t.data.astype(self.dtype)
        for entry in schedule:
            data = entry.out.data
            self._buf[id(entry.out)] = data if f64 \
                else np.empty(data.shape, dtype=self.dtype)

        # -- per-step input bindings -----------------------------------
        self._bindings: List[Tuple[str, np.ndarray]] = []
        bound = set()
        for name, t in tape.inputs.items():
            buf = self._buf.get(id(t))
            if buf is not None:
                self._bindings.append((name, buf))
                bound.add(id(t))
        # Dynamic integer index attrs get fixed buffers of their own.
        self._index_buffers: Dict[str, np.ndarray] = {}
        for name, arr in tape.input_arrays.items():
            self._index_buffers[name] = arr.copy()
        self.input_names = ({name for name, _ in self._bindings}
                            | set(self._index_buffers))

        # -- leaf bookkeeping ------------------------------------------
        #: float64: parameter arrays must still be the compiled buffers.
        self._leaf_guards: List[Tuple[Tensor, np.ndarray]] = []
        #: float32: leaves re-cast from the live tensors every replay.
        self._leaf_syncs: List[Tuple[Tensor, np.ndarray]] = []
        for key, t in leaves.items():
            if key in bound:
                continue
            if f64:
                if t.requires_grad:
                    self._leaf_guards.append((t, self._buf[key]))
            else:
                self._leaf_syncs.append((t, self._buf[key]))

        # -- backward order: replicate Tensor.backward's DFS -----------
        order: List[Tensor] = []
        seen: set = set()
        dfs: List[Tuple[Tensor, bool]] = [(root, False)]
        while dfs:
            node, processed = dfs.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            dfs.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    dfs.append((parent, False))

        self._gen = [0]
        self._grad: Dict[int, _GradSlot] = {}
        for node in order:
            buf = self._buf[id(node)]
            gbuf = np.empty(buf.shape, dtype=self.dtype)
            self._grad[id(node)] = _GradSlot(gbuf)
        self._root_slot = self._grad[id(root)]

        self._param_grads: List[Tuple[Tensor, _GradSlot]] = [
            (leaves[id(node)], self._grad[id(node)])
            for node in order
            if id(node) in leaves and node.requires_grad
        ]

        # -- build kernel closures -------------------------------------
        acc_cache: Dict[int, Callable] = {}

        def acc_of(tensor: Tensor) -> Optional[Callable]:
            slot = self._grad.get(id(tensor))
            if slot is None or not tensor.requires_grad:
                return None
            acc = acc_cache.get(id(tensor))
            if acc is None:
                acc = self._make_acc(slot)
                acc_cache[id(tensor)] = acc
            return acc

        def resolve_attrs(entry: TapeEntry) -> Dict[str, Any]:
            attrs = dict(entry.attrs)
            for key, value in attrs.items():
                if isinstance(value, np.ndarray):
                    name = tape.index_names.get(id(value))
                    if name is not None:
                        attrs[key] = self._index_buffers[name]
            return attrs

        ctx_of: Dict[int, _OpCtx] = {}
        self._fwd: List[Tuple[str, Callable]] = []
        for entry in schedule:
            k = _OpCtx(
                op=entry.op,
                out=self._buf[id(entry.out)],
                ins=[self._buf[id(p)] for p in entry.parents],
                accs=[acc_of(p) for p in entry.parents],
                attrs=resolve_attrs(entry),
                dtype=self.dtype,
            )
            ctx_of[id(entry.out)] = k
            fn = KERNELS[entry.op]["fwd"](k)
            if fn is not None:
                self._fwd.append((entry.op, fn))

        self._bwd: List[Tuple[str, Callable]] = []
        for node in reversed(order):
            entry = entry_of.get(id(node))
            if entry is None:
                continue   # leaf: accumulation happened at send time
            slot = self._grad[id(node)]
            fn = KERNELS[entry.op]["bwd"](ctx_of[id(node)])
            self._bwd.append((entry.op, self._guarded(slot, fn)))

        self._outputs: Dict[str, np.ndarray] = {
            name: self._buf[id(t)] for name, t in outputs.items()
        }
        #: op name -> {"calls", "seconds"}; filled by profiled replays.
        self.op_profile: Dict[str, Dict[str, float]] = {}
        self.num_ops = len(self._fwd) + len(self._bwd)
        self.replays = 0

    # ------------------------------------------------------------------
    def _make_acc(self, slot: _GradSlot) -> Callable[[np.ndarray], None]:
        """First contribution assigns, later contributions add.

        This mirrors the engine's ``grads[key] = grad`` / ``grads[key]
        = grads[key] + grad`` dict semantics (and, for leaves, the
        zero-init-then-add of ``Tensor._accumulate``) bit for bit.
        """
        gen = self._gen

        def acc(g: np.ndarray) -> None:
            if slot.gen != gen[0]:
                slot.gen = gen[0]
                np.copyto(slot.buf, g)
            else:
                slot.buf += g
        return acc

    def _guarded(self, slot: _GradSlot, fn: Callable) -> Callable:
        """Skip a backward op whose output never received a gradient."""
        gen = self._gen

        def run() -> None:
            if slot.gen == gen[0]:
                fn(slot.buf)
        return run

    # ------------------------------------------------------------------
    def bind_check(self, inputs: Dict[str, np.ndarray]) -> None:
        missing = sorted(self.input_names - set(inputs))
        if missing:
            raise ReplayMismatch(
                f"replay inputs missing {missing} "
                f"(expected {sorted(self.input_names)})")

    def replay(self, inputs: Optional[Dict[str, np.ndarray]] = None,
               profile: bool = False) -> Dict[str, np.ndarray]:
        """Run one compiled step; returns copies of the output buffers.

        After ``replay`` each traced parameter's ``.grad`` is set to
        the program's accumulated gradient buffer (cast to float64 in
        float32 mode), ready for ``clip_grad_norm`` / optimizer use.
        """
        inputs = inputs or {}
        self.bind_check(inputs)
        for tensor, buf in self._leaf_guards:
            if tensor.data is not buf:
                raise ReplayMismatch(
                    "a traced parameter's array was rebound; retrace")
        for tensor, buf in self._leaf_syncs:
            np.copyto(buf, tensor.data, casting="same_kind")
        for name, buf in self._bindings:
            value = np.asarray(inputs[name])
            if value.shape != buf.shape:
                raise ReplayMismatch(
                    f"input {name!r} has shape {value.shape}, compiled "
                    f"for {buf.shape}; retrace")
            np.copyto(buf, value, casting="same_kind")
        for name, buf in self._index_buffers.items():
            value = np.asarray(inputs[name])
            if value.shape != buf.shape:
                raise ReplayMismatch(
                    f"index input {name!r} has shape {value.shape}, "
                    f"compiled for {buf.shape}; retrace")
            np.copyto(buf, value, casting="same_kind")

        if profile:
            self._run_profiled(self._fwd, "fwd")
        else:
            for _, fn in self._fwd:
                fn()

        self._gen[0] += 1
        self._root_slot.gen = self._gen[0]
        self._root_slot.buf.fill(1.0)
        if profile:
            self._run_profiled(self._bwd, "bwd")
        else:
            for _, fn in self._bwd:
                fn()

        for tensor, slot in self._param_grads:
            if slot.gen != self._gen[0]:
                continue
            tensor.grad = slot.buf if self.dtype == np.float64 \
                else slot.buf.astype(np.float64)
        self.replays += 1
        return {name: np.array(buf, copy=True)
                for name, buf in self._outputs.items()}

    def _run_profiled(self, schedule: Sequence[Tuple[str, Callable]],
                      phase: str) -> None:
        from ..util import timing
        for op, fn in schedule:
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            name = f"{phase}.{op}"
            entry = self.op_profile.get(name)
            if entry is None:
                entry = self.op_profile[name] = \
                    {"calls": 0, "seconds": 0.0}
            entry["calls"] += 1
            entry["seconds"] += elapsed
            timing.record(f"op.{name}", elapsed)
