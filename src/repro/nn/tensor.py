"""A small reverse-mode automatic differentiation engine on numpy arrays.

This module is the substrate that replaces PyTorch in the reproduction.  It
implements a :class:`Tensor` type that records the operations applied to it
and can compute gradients of a scalar loss with respect to every tensor that
participated in the computation, via :meth:`Tensor.backward`.

The engine is deliberately small but complete enough for the paper's model:
broadcasting elementwise arithmetic, matrix multiplication, reductions,
shape manipulation, indexing/gather, concatenation, and the nonlinearities
used by the timing predictor (ReLU, tanh, sigmoid, exp, log, softplus).

Example
-------
>>> import numpy as np
>>> from repro.nn import Tensor
>>> w = Tensor(np.ones((3, 2)), requires_grad=True)
>>> x = Tensor(np.arange(6.0).reshape(2, 3))
>>> loss = (x @ w).sum()
>>> loss.backward()
>>> w.grad.shape
(3, 2)
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from . import _tracing
from .grad_mode import is_grad_enabled

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Numpy broadcasting implicitly expands operands; the corresponding
    gradient operation is a sum over the broadcast axes.  This helper undoes
    broadcasting by summing over the leading added axes and over any axis
    that was expanded from size 1.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were expanded from 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    return arr


class Tensor:
    """A numpy array with reverse-mode autograd support.

    Parameters
    ----------
    data:
        Array (or scalar / nested sequence) holding the tensor's value.
        Stored as ``float64``.
    requires_grad:
        If True, gradients flowing through this tensor are accumulated in
        :attr:`grad` during :meth:`backward`.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents",
                 "name", "_pending_grads")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a result tensor wired into the autograd graph.

        Inside a :func:`repro.nn.no_grad` scope the result is detached:
        no parents are recorded and no backward closure is kept, so the
        forward graph is never materialised.  Every op funnels through
        here (directly or via ``_finish``), which is what makes the
        no-grad fast path engine-wide rather than per-op.
        """
        requires = is_grad_enabled() and \
            any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones (the usual choice for a scalar loss).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        # Topologically order the graph so each node's output gradient is
        # complete before its backward function runs.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            # Leaf accumulation happens inside the backward closures via
            # the _receive helper captured in each op.
            node._receive_upstream(node_grad, grads)

    def _receive_upstream(self, node_grad: np.ndarray,
                          grads: dict[int, np.ndarray]) -> None:
        """Dispatch an upstream gradient to this node's backward closure."""
        if self._backward is None:
            self._accumulate(node_grad)
            return
        # Backward closures push into `grads` via this bound helper.
        self._pending_grads = grads  # type: ignore[attr-defined]
        try:
            self._backward(node_grad)
        finally:
            del self._pending_grads  # type: ignore[attr-defined]

    def _send(self, parent: "Tensor", grad: np.ndarray) -> None:
        """Route ``grad`` to ``parent`` during backward traversal."""
        if not parent.requires_grad:
            return
        if parent._backward is None and not parent._parents:
            parent._accumulate(grad)
            return
        grads = self._pending_grads  # type: ignore[attr-defined]
        key = id(parent)
        if key in grads:
            grads[key] = grads[key] + grad
        else:
            grads[key] = grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, _unbroadcast(grad, self.shape))
            out._send(other_t, _unbroadcast(grad, other_t.shape))

        return _finish(out_data, (self, other_t), backward, op="add")

    __radd__ = __add__

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, _unbroadcast(grad * other_t.data, self.shape))
            out._send(other_t, _unbroadcast(grad * self.data, other_t.shape))

        return _finish(out_data, (self, other_t), backward, op="mul")

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, -grad)

        return _finish(-self.data, (self,), backward, op="neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, _unbroadcast(grad / other_t.data, self.shape))
            out._send(
                other_t,
                _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape),
            )

        return _finish(out_data, (self, other_t), backward, op="truediv")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad * exponent * self.data ** (exponent - 1))

        return _finish(out_data, (self,), backward, op="pow",
                       attrs={"exponent": exponent})

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    g_self = np.outer(grad, other_t.data) if grad.ndim == 1 \
                        else grad[..., None] * other_t.data
                else:
                    g_self = grad @ np.swapaxes(other_t.data, -1, -2)
                out._send(self, _unbroadcast(np.asarray(g_self), self.shape))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    g_other = np.outer(self.data, grad) if grad.ndim == 1 \
                        else self.data[..., None] @ grad[..., None, :]
                else:
                    g_other = np.swapaxes(self.data, -1, -2) @ grad
                out._send(other_t, _unbroadcast(np.asarray(g_other), other_t.shape))

        return _finish(out_data, (self, other_t), backward, op="matmul")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            out._send(self, np.broadcast_to(g, self.shape).copy())

        return _finish(out_data, (self,), backward, op="sum",
                       attrs={"axis": axis, "keepdims": keepdims})

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Biased variance along ``axis`` (differentiable)."""
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) * (self - mu)
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient among ties to keep the op well defined.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            out._send(self, mask * g / denom)

        return _finish(out_data, (self,), backward, op="max",
                       attrs={"axis": axis, "keepdims": keepdims})

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad.reshape(self.shape))

        return _finish(out_data, (self,), backward, op="reshape",
                       attrs={"shape": tuple(shape)})

    def transpose(self, *axes: int) -> "Tensor":
        axes_t: Optional[Tuple[int, ...]] = tuple(axes) if axes else None
        out_data = self.data.transpose(axes_t)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            if axes_t is None:
                out._send(self, grad.transpose())
            else:
                inverse = np.argsort(axes_t)
                out._send(self, grad.transpose(tuple(inverse)))

        return _finish(out_data, (self,), backward, op="transpose",
                       attrs={"axes": axes_t})

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            out._send(self, full)

        return _finish(np.asarray(out_data), (self,), backward,
                       op="getitem", attrs={"index": index})

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad * (self.data > 0))

        return _finish(out_data, (self,), backward, op="relu")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad * (1.0 - out_data ** 2))

        return _finish(out_data, (self,), backward, op="tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad * out_data * (1.0 - out_data))

        return _finish(out_data, (self,), backward, op="sigmoid")

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -700.0, 700.0))

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad * out_data)

        return _finish(out_data, (self,), backward, op="exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad / self.data)

        return _finish(out_data, (self,), backward, op="log")

    def softplus(self) -> "Tensor":
        """Numerically stable ``log(1 + exp(x))``."""
        x = self.data
        out_data = np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
            out._send(self, grad * sig)

        return _finish(out_data, (self,), backward, op="softplus")

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad * np.sign(self.data))

        return _finish(out_data, (self,), backward, op="abs")

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            inside = (self.data >= low) & (self.data <= high)
            out._send(self, grad * inside)

        return _finish(out_data, (self,), backward, op="clip",
                       attrs={"low": low, "high": high})

    def sqrt(self) -> "Tensor":
        return self ** 0.5


def _finish(data: np.ndarray, parents: Tuple[Tensor, ...],
            backward: Callable[[np.ndarray, Tensor], None],
            op: Optional[str] = None, attrs: Optional[dict] = None) -> Tensor:
    """Build a graph node whose backward closure receives (grad, out).

    Under :func:`no_grad` the result requires no gradient, so the
    wiring closure is never constructed and ``backward`` is dropped.

    ``op``/``attrs`` name the operation for the trace/compile layer
    (:mod:`repro.nn.compile`): while a trace is active every op is
    appended to the tape, including ones producing ``requires_grad=
    False`` results — their *values* still feed the forward replay.
    An op without a name poisons compilation (the tape records it and
    the compiler refuses), never silently miscomputes.
    """
    out = Tensor._make(np.asarray(data), parents, _NO_BACKWARD)
    if out.requires_grad:
        out._backward = lambda grad: backward(grad, out)
    if _tracing.ACTIVE:
        _tracing.emit(op, out, parents, attrs)
    return out


def _NO_BACKWARD(grad: np.ndarray) -> None:  # placeholder, never called
    raise AssertionError("placeholder backward invoked")


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op for tensors)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(int(start), int(stop))
            out._send(tensor, grad[tuple(index)])

    return _finish(out_data, tuple(tensors), backward, op="concatenate",
                   attrs={"axis": axis, "sizes": tuple(sizes)})


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            out._send(tensor, np.squeeze(piece, axis=axis))

    return _finish(out_data, tuple(tensors), backward, op="stack",
                   attrs={"axis": axis})


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise select (condition is not differentiated)."""
    a_t, b_t = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a_t.data, b_t.data)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        out._send(a_t, _unbroadcast(grad * cond, a_t.shape))
        out._send(b_t, _unbroadcast(grad * (~cond), b_t.shape))

    return _finish(out_data, (a_t, b_t), backward, op="where",
                   attrs={"cond": cond})


def gather_rows(source: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``source[index]`` differentiably (index is integer array)."""
    idx = np.asarray(index, dtype=np.int64)
    out_data = source.data[idx]

    def backward(grad: np.ndarray, out: Tensor) -> None:
        full = np.zeros_like(source.data)
        np.add.at(full, idx, grad)
        out._send(source, full)

    return _finish(out_data, (source,), backward, op="gather_rows",
                   attrs={"index": idx})


def scatter_add_rows(values: Tensor, index: np.ndarray, num_rows: int) -> Tensor:
    """Sum ``values`` rows into ``num_rows`` buckets given by ``index``.

    The inverse of :func:`gather_rows`: ``out[i] = sum_j values[j]`` over all
    ``j`` with ``index[j] == i``.  Used for message aggregation in the GNN.
    """
    idx = np.asarray(index, dtype=np.int64)
    out_shape = (num_rows,) + values.shape[1:]
    out_data = np.zeros(out_shape, dtype=values.data.dtype)
    np.add.at(out_data, idx, values.data)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        out._send(values, grad[idx])

    return _finish(out_data, (values,), backward, op="scatter_add_rows",
                   attrs={"index": idx, "num_rows": num_rows})


def no_grad_copy(tensor: Tensor) -> np.ndarray:
    """Return a detached copy of the tensor's data."""
    return tensor.data.copy()
