"""Routing substrate: pre-route estimation, global routing, RUDY maps."""

from .estimator import ParasiticsProvider, PreRouteEstimator, hpwl, manhattan
from .maze import MazeRouter, RoutingGrid, dijkstra_route, maze_route_design
from .router import (
    CongestionGrid,
    GlobalRouter,
    RoutedParasitics,
    route_design,
)
from .rudy import rudy_map

__all__ = [
    "CongestionGrid",
    "GlobalRouter",
    "MazeRouter",
    "RoutingGrid",
    "dijkstra_route",
    "maze_route_design",
    "ParasiticsProvider",
    "PreRouteEstimator",
    "RoutedParasitics",
    "hpwl",
    "manhattan",
    "route_design",
    "rudy_map",
]
