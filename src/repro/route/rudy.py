"""RUDY (Rectangular Uniform wire DensitY) estimation.

RUDY [Spindler & Johannes, DATE'07] spreads each net's expected
wirelength uniformly over its bounding box; summing over nets yields a
fast routing-demand picture.  The paper uses a RUDY map as one of the
three layout-image channels fed to the CNN.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Netlist
from ..place import Floorplan

def rudy_map(netlist: Netlist, floorplan: Floorplan,
             resolution: int = 32, wire_width: float = None) -> np.ndarray:
    """Compute the RUDY map of a placed design.

    Parameters
    ----------
    netlist:
        Placed design.
    floorplan:
        Die geometry.
    resolution:
        Output grid size (resolution x resolution).
    wire_width:
        Effective wire width in um; defaults to half the site width.

    Returns
    -------
    numpy.ndarray
        ``(resolution, resolution)`` array, y-major (row = y bin).
    """
    if wire_width is None:
        wire_width = 0.5 * floorplan.site_width
    grid = np.zeros((resolution, resolution))
    w, h = max(floorplan.width, 1e-9), max(floorplan.height, 1e-9)
    cell_w = w / resolution
    cell_h = h / resolution

    for net in netlist.nets.values():
        pins = net.pins
        if len(pins) < 2 or net.is_clock:
            continue
        xs = [p.x for p in pins]
        ys = [p.y for p in pins]
        x0, x1 = min(xs), max(xs)
        y0, y1 = min(ys), max(ys)
        length = (x1 - x0) + (y1 - y0)
        # Degenerate boxes still deposit demand in one bin.
        area = max((x1 - x0), cell_w) * max((y1 - y0), cell_h)
        density = length * wire_width / area

        i0 = min(resolution - 1, int(y0 / h * resolution))
        i1 = min(resolution - 1, int(y1 / h * resolution))
        j0 = min(resolution - 1, int(x0 / w * resolution))
        j1 = min(resolution - 1, int(x1 / w * resolution))
        grid[i0:i1 + 1, j0:j1 + 1] += density
    return grid
