"""Pre-route parasitics estimation (what the timing predictor's world sees).

Before routing exists, STA engines estimate interconnect from placement:
the net's half-perimeter wirelength sets the wire capacitance, and a star
topology with per-sink Manhattan resistance gives Elmore-style delays.
This is deliberately *optimistic/inaccurate* relative to the routed
parasitics from :mod:`repro.route.router` — that modelling gap is exactly
why pre-routing timing prediction is an ML problem in the first place.
"""

from __future__ import annotations

from typing import Dict

from ..netlist import Net, Netlist, Pin


class ParasiticsProvider:
    """Interface consumed by the STA engine."""

    def net_load(self, net: Net) -> float:
        """Total capacitance (pF) the net's driver sees."""
        raise NotImplementedError

    def wire_delay(self, net: Net, sink: Pin) -> float:
        """Interconnect delay (ns) from the driver to ``sink``."""
        raise NotImplementedError

    def slew_degradation(self, net: Net, sink: Pin) -> float:
        """Extra transition time (ns) accumulated across the wire."""
        raise NotImplementedError


def hpwl(net: Net) -> float:
    """Half-perimeter wirelength of a placed net (um)."""
    pins = net.pins
    if len(pins) < 2:
        return 0.0
    xs = [p.x for p in pins]
    ys = [p.y for p in pins]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def manhattan(a: Pin, b: Pin) -> float:
    return abs(a.x - b.x) + abs(a.y - b.y)


class PreRouteEstimator(ParasiticsProvider):
    """HPWL/star-model parasitics from placement only.

    Parameters
    ----------
    netlist:
        Placed design (pin locations must be set).
    fanout_factor:
        Multiplier on HPWL per extra sink, approximating the Steiner
        length increase of multi-fanout nets.
    """

    def __init__(self, netlist: Netlist, fanout_factor: float = 0.15) -> None:
        self.netlist = netlist
        self.wire = netlist.library.wire
        self.fanout_factor = fanout_factor
        self._length_cache: Dict[int, float] = {}

    def estimated_length(self, net: Net) -> float:
        """Estimated routed length (um): HPWL with a fanout correction."""
        cached = self._length_cache.get(net.index)
        if cached is not None:
            return cached
        length = hpwl(net) * (1.0 + self.fanout_factor
                              * max(0, net.fanout - 1))
        self._length_cache[net.index] = length
        return length

    def net_load(self, net: Net) -> float:
        wire_cap = self.wire.cap_per_um * self.estimated_length(net)
        return wire_cap + net.total_sink_cap()

    def wire_delay(self, net: Net, sink: Pin) -> float:
        if net.driver is None:
            return 0.0
        dist = manhattan(net.driver, sink)
        res = self.wire.res_per_um * dist
        # Star model: the sink sees half the wire cap plus its own load.
        wire_cap = self.wire.cap_per_um * dist
        return res * (0.5 * wire_cap + sink.cap)

    def slew_degradation(self, net: Net, sink: Pin) -> float:
        # ln(9) * Elmore, consistent with the routed model.
        return 2.197 * self.wire_delay(net, sink)
