"""Grid-based maze routing (Lee-style) with congestion-aware costs.

The MST router in :mod:`repro.route.router` models detours statistically;
this module actually *finds* them: nets are routed one at a time on a
coarse grid with Dijkstra search, where a bin's cost grows with the
demand already committed to it.  Later nets therefore flow around the
congestion earlier nets created — the negotiation dynamic real global
routers have.

It is an optional alternative backend for :class:`GlobalRouter`-style
parasitics (see :func:`maze_route_design`) and the subject of its own
benchmark comparisons against the MST router.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..netlist import Net, Netlist
from ..place import Floorplan
from ..sta.rc import RCTree


class RoutingGrid:
    """Uniform routing grid with per-bin cost that grows with usage."""

    def __init__(self, floorplan: Floorplan, bins: int = 24,
                 congestion_penalty: float = 0.4) -> None:
        self.bins = bins
        self.width = max(floorplan.width, 1e-9)
        self.height = max(floorplan.height, 1e-9)
        self.usage = np.zeros((bins, bins))
        self.congestion_penalty = congestion_penalty
        self.step_x = self.width / bins
        self.step_y = self.height / bins

    def bin_of(self, x: float, y: float) -> Tuple[int, int]:
        i = min(self.bins - 1, max(0, int(x / self.width * self.bins)))
        j = min(self.bins - 1, max(0, int(y / self.height * self.bins)))
        return i, j

    def center_of(self, i: int, j: int) -> Tuple[float, float]:
        return ((i + 0.5) * self.step_x, (j + 0.5) * self.step_y)

    def step_cost(self, i: int, j: int, horizontal: bool) -> float:
        """Cost of entering bin (i, j): distance plus congestion."""
        base = self.step_x if horizontal else self.step_y
        return base * (1.0 + self.congestion_penalty * self.usage[i, j])

    def commit(self, path: Sequence[Tuple[int, int]]) -> None:
        for i, j in path:
            self.usage[i, j] += 1.0


def dijkstra_route(grid: RoutingGrid, start: Tuple[int, int],
                   goal: Tuple[int, int]
                   ) -> Tuple[List[Tuple[int, int]], float]:
    """Cheapest bin path from ``start`` to ``goal`` (4-connected).

    Returns (path including both endpoints, total cost).
    """
    if start == goal:
        return [start], 0.0
    dist: Dict[Tuple[int, int], float] = {start: 0.0}
    prev: Dict[Tuple[int, int], Tuple[int, int]] = {}
    heap = [(0.0, start)]
    while heap:
        d, node = heapq.heappop(heap)
        if node == goal:
            break
        if d > dist.get(node, np.inf):
            continue
        i, j = node
        for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            ni, nj = i + di, j + dj
            if not (0 <= ni < grid.bins and 0 <= nj < grid.bins):
                continue
            cost = grid.step_cost(ni, nj, horizontal=dj == 0)
            nd = d + cost
            if nd < dist.get((ni, nj), np.inf):
                dist[(ni, nj)] = nd
                prev[(ni, nj)] = node
                heapq.heappush(heap, (nd, (ni, nj)))
    if goal not in dist:
        raise RuntimeError("maze routing failed to reach the goal")
    path = [goal]
    while path[-1] != start:
        path.append(prev[path[-1]])
    path.reverse()
    return path, dist[goal]


class MazeRouter:
    """Routes every signal net via sequential congestion-aware search.

    Nets are ordered by half-perimeter (short first, the classic
    heuristic), each sink is routed to the nearest already-routed bin of
    its net (a maze-style Steiner approximation), and the used bins are
    committed so subsequent nets pay for crossing them.
    """

    def __init__(self, netlist: Netlist, floorplan: Floorplan,
                 bins: int = 24, congestion_penalty: float = 0.4) -> None:
        self.netlist = netlist
        self.floorplan = floorplan
        self.grid = RoutingGrid(floorplan, bins, congestion_penalty)
        self.trees: Dict[int, RCTree] = {}
        self.routed_length: Dict[int, float] = {}

    def run(self) -> None:
        from .estimator import hpwl

        nets = [n for n in self.netlist.nets.values()
                if n.driver is not None and n.sinks and not n.is_clock]
        nets.sort(key=hpwl)
        for net in nets:
            self._route_net(net)

    def _route_net(self, net: Net) -> None:
        wire = self.netlist.library.wire
        tree = RCTree()
        driver = net.driver
        start_bin = self.grid.bin_of(driver.x, driver.y)
        # bin -> RC tree node for this net.
        bin_node: Dict[Tuple[int, int], int] = {start_bin: 0}
        total_len = 0.0
        committed: List[Tuple[int, int]] = [start_bin]

        for sink in sorted(net.sinks,
                           key=lambda s: abs(s.x - driver.x)
                           + abs(s.y - driver.y)):
            goal = self.grid.bin_of(sink.x, sink.y)
            # Route to the nearest bin already on the net's tree.
            best_path, best_cost, best_anchor = None, np.inf, None
            for anchor in list(bin_node):
                path, cost = dijkstra_route(self.grid, goal, anchor)
                if cost < best_cost:
                    best_path, best_cost, best_anchor = path, cost, anchor
            # best_path runs goal -> anchor; build RC from the anchor out.
            assert best_path is not None
            segment = list(reversed(best_path))  # anchor ... goal
            parent = bin_node[best_anchor]
            for k in range(1, len(segment)):
                b = segment[k]
                if b in bin_node:
                    parent = bin_node[b]
                    continue
                prev_center = self.grid.center_of(*segment[k - 1])
                cur_center = self.grid.center_of(*b)
                length = (abs(cur_center[0] - prev_center[0])
                          + abs(cur_center[1] - prev_center[1]))
                total_len += length
                res, cap = wire.rc(length)
                tree.nodes[parent].cap += cap / 2
                parent = tree.add_node(parent, res, cap / 2)
                bin_node[b] = parent
                committed.append(b)
            tree.attach_sink(sink.index, bin_node[segment[-1]], sink.cap)
        self.grid.commit(committed)
        self.trees[net.index] = tree
        self.routed_length[net.index] = total_len


def maze_route_design(netlist: Netlist, floorplan: Floorplan,
                      bins: int = 24):
    """Route with the maze router; returns signoff parasitics."""
    from .router import RoutedParasitics

    router = MazeRouter(netlist, floorplan, bins=bins)
    router.run()
    # RoutedParasitics only needs .trees, which MazeRouter provides.
    return RoutedParasitics(router)
