"""Global routing with congestion-aware detours (Innovus routing stand-in).

Each net is routed as a rectilinear minimum spanning tree over its pins
(Prim's algorithm under the L1 metric, a standard Steiner approximation).
A first pass accumulates routing demand on a coarse grid; a second pass
stretches edges that cross congested bins.  The result is an RC tree per
net, which signoff STA consumes through :class:`RoutedParasitics`.

The systematic gap between these routed parasitics and the pre-route
star estimates (detours, Steiner vs star topology, congestion) is what
the paper's model must learn to anticipate.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..netlist import Net, Netlist, Pin
from ..place import Floorplan
from ..sta.rc import RCTree
from .estimator import ParasiticsProvider, manhattan


class CongestionGrid:
    """Coarse routing-demand grid over the die."""

    def __init__(self, floorplan: Floorplan, bins: int = 16,
                 capacity_per_um: float = 14.0) -> None:
        self.bins = bins
        self.width = max(floorplan.width, 1e-6)
        self.height = max(floorplan.height, 1e-6)
        self.demand = np.zeros((bins, bins))
        bin_area = (self.width / bins) * (self.height / bins)
        # Capacity in total routable wirelength per bin.
        self.capacity = capacity_per_um * np.sqrt(bin_area) \
            * (self.width / bins)

    def _bin(self, x: float, y: float) -> Tuple[int, int]:
        i = min(self.bins - 1, max(0, int(x / self.width * self.bins)))
        j = min(self.bins - 1, max(0, int(y / self.height * self.bins)))
        return i, j

    def add_demand(self, x0: float, y0: float, x1: float, y1: float) -> None:
        """Spread an edge's wirelength demand over its bounding bins."""
        i0, j0 = self._bin(min(x0, x1), min(y0, y1))
        i1, j1 = self._bin(max(x0, x1), max(y0, y1))
        length = abs(x1 - x0) + abs(y1 - y0)
        n_bins = (i1 - i0 + 1) * (j1 - j0 + 1)
        share = length / n_bins
        self.demand[i0:i1 + 1, j0:j1 + 1] += share

    def overflow(self, x0: float, y0: float, x1: float, y1: float) -> float:
        """Mean demand/capacity overflow along an edge's bounding box."""
        i0, j0 = self._bin(min(x0, x1), min(y0, y1))
        i1, j1 = self._bin(max(x0, x1), max(y0, y1))
        region = self.demand[i0:i1 + 1, j0:j1 + 1]
        util = region / self.capacity
        return float(np.maximum(util - 1.0, 0.0).mean())

    @property
    def max_utilization(self) -> float:
        return float(self.demand.max() / self.capacity)


def _mst_edges(pins: List[Pin]) -> List[Tuple[int, int]]:
    """Prim's MST over pins under the Manhattan metric.

    Returns (parent_index, child_index) pairs into ``pins`` with the
    driver (index 0) as the root.
    """
    n = len(pins)
    in_tree = [False] * n
    best_dist = [np.inf] * n
    best_parent = [0] * n
    in_tree[0] = True
    for k in range(n):
        if k != 0:
            best_dist[k] = manhattan(pins[0], pins[k])
    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        # Pick the closest out-of-tree pin.
        candidate = -1
        for k in range(n):
            if not in_tree[k] and (candidate < 0
                                   or best_dist[k] < best_dist[candidate]):
                candidate = k
        in_tree[candidate] = True
        edges.append((best_parent[candidate], candidate))
        for k in range(n):
            if not in_tree[k]:
                d = manhattan(pins[candidate], pins[k])
                if d < best_dist[k]:
                    best_dist[k] = d
                    best_parent[k] = candidate
    return edges


class GlobalRouter:
    """Routes every signal net and materialises per-net RC trees.

    Parameters
    ----------
    netlist:
        Placed design.
    floorplan:
        Die geometry (for the congestion grid).
    detour_factor:
        Strength of congestion-induced detours: an edge in a region with
        mean overflow ``v`` is stretched by ``1 + detour_factor * v``.
    seed:
        Adds reproducible routing jitter (scenic detours), standing in for
        the unpredictable part of detailed routing.
    jitter:
        Relative magnitude of the random detour component.
    """

    def __init__(self, netlist: Netlist, floorplan: Floorplan,
                 detour_factor: float = 1.5, seed: int = 0,
                 jitter: float = 0.08) -> None:
        self.netlist = netlist
        self.floorplan = floorplan
        self.detour_factor = detour_factor
        self.jitter = jitter
        self.rng = np.random.default_rng(seed)
        self.grid = CongestionGrid(floorplan)
        self.trees: Dict[int, RCTree] = {}
        self.routed_length: Dict[int, float] = {}

    def run(self) -> None:
        """Two-pass global route: demand accumulation, then RC build."""
        nets = [n for n in self.netlist.nets.values()
                if n.driver is not None and n.sinks and not n.is_clock]
        edge_lists: Dict[int, List[Tuple[int, int]]] = {}
        for net in nets:
            pins = [net.driver] + net.sinks
            edges = _mst_edges(pins)
            edge_lists[net.index] = edges
            for pa, pc in edges:
                self.grid.add_demand(pins[pa].x, pins[pa].y,
                                     pins[pc].x, pins[pc].y)
        for net in nets:
            self.trees[net.index] = self._build_tree(
                net, edge_lists[net.index]
            )

    def _build_tree(self, net: Net, edges: List[Tuple[int, int]]) -> RCTree:
        pins = [net.driver] + net.sinks
        wire = self.netlist.library.wire
        tree = RCTree()
        node_of = {0: 0}
        total_len = 0.0
        # Edges from Prim come in tree-growth order, so parents exist.
        for pa, pc in edges:
            a, c = pins[pa], pins[pc]
            base_len = manhattan(a, c)
            overflow = self.grid.overflow(a.x, a.y, c.x, c.y)
            detour = 1.0 + self.detour_factor * overflow \
                + self.jitter * float(self.rng.random())
            length = base_len * detour + 0.5 * self.floorplan.site_width
            total_len += length
            res, cap = wire.rc(length)
            # Pi model: half the wire cap at each end of the segment.
            tree.nodes[node_of[pa]].cap += cap / 2
            node = tree.add_node(node_of[pa], res, cap / 2)
            node_of[pc] = node
            tree.attach_sink(c.index, node, c.cap)
        self.routed_length[net.index] = total_len
        return tree


class RoutedParasitics(ParasiticsProvider):
    """Signoff parasitics view backed by the router's RC trees."""

    def __init__(self, router: GlobalRouter) -> None:
        self.router = router
        self._delay_cache: Dict[int, Dict[int, float]] = {}
        self._slew_cache: Dict[int, Dict[int, float]] = {}

    def _tree(self, net: Net) -> RCTree:
        return self.router.trees[net.index]

    def net_load(self, net: Net) -> float:
        return self._tree(net).total_cap()

    def wire_delay(self, net: Net, sink: Pin) -> float:
        delays = self._delay_cache.get(net.index)
        if delays is None:
            delays = self._tree(net).sink_delays()
            self._delay_cache[net.index] = delays
        return delays[sink.index]

    def slew_degradation(self, net: Net, sink: Pin) -> float:
        slews = self._slew_cache.get(net.index)
        if slews is None:
            slews = self._tree(net).slew_degradations()
            self._slew_cache[net.index] = slews
        return slews[sink.index]


def route_design(netlist: Netlist, floorplan: Floorplan,
                 seed: int = 0) -> RoutedParasitics:
    """Route ``netlist`` and return signoff parasitics."""
    router = GlobalRouter(netlist, floorplan, seed=seed)
    router.run()
    return RoutedParasitics(router)
