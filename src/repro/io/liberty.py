"""Liberty-style (``.lib``) library writer and reader.

Writes the synthetic libraries in a liberty-like syntax — cell groups,
pin groups with capacitance and direction, and ``lu_table`` timing
groups with explicit index/value arrays — and parses that subset back.
The round trip reconstructs a fully functional
:class:`~repro.techlib.TechLibrary`, which is how the reproduction's
"PDKs" could be shipped or inspected as text.
"""

from __future__ import annotations

import re
from typing import Dict, List

import numpy as np

from ..techlib import (
    StandardCell,
    TechLibrary,
    TimingArc,
    TimingTable,
    WireModel,
)


def _fmt_values(values: np.ndarray) -> str:
    rows = [", ".join(f"{v:.6g}" for v in row) for row in values]
    return " \\\n        ".join(f'"{row}"' for row in rows)


def _fmt_axis(axis: np.ndarray) -> str:
    return '"' + ", ".join(f"{v:.6g}" for v in axis) + '"'


def write_liberty(library: TechLibrary) -> str:
    """Serialise ``library`` in liberty-like text."""
    lines = [
        f"library ({library.name}) {{",
        "  time_unit : \"1ns\";",
        "  capacitive_load_unit (1, pf);",
        f"  /* node: {library.node_nm}nm */",
        f"  wire_load: res_per_um {library.wire.res_per_um:.6g} "
        f"cap_per_um {library.wire.cap_per_um:.6g};",
        f"  site: width {library.site[0]:.6g} "
        f"height {library.site[1]:.6g};",
        f"  default_clock_period: {library.default_clock_period:.6g};",
        f"  default_input_slew: {library.primary_input_slew:.6g};",
    ]
    for name in sorted(library.cells):
        cell = library.cells[name]
        lines.append(f"  cell ({cell.name}) {{")
        lines.append(f"    /* function: {cell.function} */")
        lines.append(f"    area : {cell.area:.6g};")
        lines.append(f"    cell_leakage_power : {cell.leakage:.6g};")
        lines.append(f"    drive_strength : {cell.drive_strength:.6g};")
        if cell.is_sequential:
            lines.append("    ff () {")
            lines.append(f"      setup : {cell.setup_time:.6g};")
            lines.append(f"      clk_to_q : {cell.clk_to_q:.6g};")
            lines.append("    }")
        for pin_name in cell.input_pins:
            lines.append(f"    pin ({pin_name}) {{")
            lines.append("      direction : input;")
            lines.append(
                f"      capacitance : {cell.pin_caps[pin_name]:.6g};"
            )
            lines.append("    }")
        lines.append(f"    pin ({cell.output_pin}) {{")
        lines.append("      direction : output;")
        for arc in cell.arcs:
            for kind, table in (("cell_rise", arc.delay),
                                ("rise_transition", arc.output_slew)):
                lines.append(f"      timing () {{ /* {arc.input_pin} -> "
                             f"{arc.output_pin} {kind} */")
                lines.append(f"        related_pin : \"{arc.input_pin}\";")
                lines.append(f"        {kind} (lut) {{")
                lines.append(
                    f"          index_1 ({_fmt_axis(table.slew_axis)});"
                )
                lines.append(
                    f"          index_2 ({_fmt_axis(table.load_axis)});"
                )
                lines.append(
                    f"          values ({_fmt_values(table.values)});"
                )
                lines.append("        }")
                lines.append("      }")
        lines.append("    }")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


class LibertyParseError(ValueError):
    """Raised on malformed liberty text."""


def _parse_numbers(text: str) -> List[float]:
    return [float(v) for v in re.findall(r"[-+0-9.eE]+", text)]


def parse_liberty(text: str) -> TechLibrary:
    """Parse liberty text written by :func:`write_liberty`."""
    lib_match = re.search(r"library \((\S+)\)", text)
    if not lib_match:
        raise LibertyParseError("no library group")
    name = lib_match.group(1)
    node = float(re.search(r"/\* node: ([\d.]+)nm \*/", text).group(1))
    wire = re.search(
        r"wire_load: res_per_um (\S+) cap_per_um (\S+);", text
    )
    site = re.search(r"site: width (\S+) height (\S+);", text)
    period = float(re.search(r"default_clock_period: (\S+);",
                             text).group(1))
    in_slew = float(re.search(r"default_input_slew: (\S+);",
                              text).group(1))

    cells: List[StandardCell] = []
    cell_blocks = re.split(r"\n  cell \(", text)[1:]
    for block in cell_blocks:
        cell_name = block.split(")", 1)[0]
        function = re.search(r"/\* function: (\S+) \*/", block).group(1)
        area = float(re.search(r"area : (\S+);", block).group(1))
        leakage = float(re.search(r"cell_leakage_power : (\S+);",
                                  block).group(1))
        drive = float(re.search(r"drive_strength : (\S+);",
                                block).group(1))
        is_seq = "ff ()" in block
        setup = clk_to_q = 0.0
        if is_seq:
            setup = float(re.search(r"setup : (\S+);", block).group(1))
            clk_to_q = float(re.search(r"clk_to_q : (\S+);",
                                       block).group(1))

        pin_caps: Dict[str, float] = {}
        input_pins: List[str] = []
        output_pin = None
        for pin_match in re.finditer(
            r"pin \((\w+)\) \{\s*direction : (input|output);"
            r"(?:\s*capacitance : (\S+);)?", block
        ):
            pin_name, direction, cap = pin_match.groups()
            if direction == "input":
                input_pins.append(pin_name)
                pin_caps[pin_name] = float(cap)
            else:
                output_pin = pin_name
        if output_pin is None:
            raise LibertyParseError(f"cell {cell_name} has no output pin")

        arcs: Dict[str, Dict[str, TimingTable]] = {}
        for timing in re.finditer(
            r"timing \(\) \{ /\* (\w+) -> (\w+) (\w+) \*/\s*"
            r"related_pin : \"(\w+)\";\s*"
            r"\w+ \(lut\) \{\s*"
            r"index_1 \(([^;]+)\);\s*"
            r"index_2 \(([^;]+)\);\s*"
            r"values \((.*?)\);\s*\}",
            block, re.DOTALL,
        ):
            in_pin, _out, kind, _rel, idx1, idx2, values = timing.groups()
            slew_axis = _parse_numbers(idx1)
            load_axis = _parse_numbers(idx2)
            flat = _parse_numbers(values)
            table = TimingTable(
                slew_axis, load_axis,
                np.array(flat).reshape(len(slew_axis), len(load_axis)),
            )
            arcs.setdefault(in_pin, {})[kind] = table

        arc_list = [
            TimingArc(in_pin, output_pin,
                      tables["cell_rise"], tables["rise_transition"])
            for in_pin, tables in arcs.items()
        ]
        cells.append(StandardCell(
            name=cell_name, function=function, drive_strength=drive,
            input_pins=input_pins, output_pin=output_pin,
            pin_caps=pin_caps, arcs=arc_list, area=area, leakage=leakage,
            is_sequential=is_seq, setup_time=setup, clk_to_q=clk_to_q,
        ))

    return TechLibrary(
        name=name, node_nm=node, cells=cells,
        wire=WireModel(float(wire.group(1)), float(wire.group(2))),
        site=(float(site.group(1)), float(site.group(2))),
        default_clock_period=period,
        primary_input_slew=in_slew,
    )
