"""EDA interchange formats: structural Verilog, DEF, Liberty, SPEF."""

from .def_format import DefParseError, parse_def, write_def
from .liberty import LibertyParseError, parse_liberty, write_liberty
from .spef import SpefParseError, parse_spef, write_spef
from .verilog import (
    VerilogParseError,
    parse_verilog,
    verilog_roundtrip_equal,
    write_verilog,
)

__all__ = [
    "DefParseError",
    "LibertyParseError",
    "SpefParseError",
    "VerilogParseError",
    "parse_def",
    "parse_liberty",
    "parse_spef",
    "parse_verilog",
    "verilog_roundtrip_equal",
    "write_def",
    "write_liberty",
    "write_spef",
    "write_verilog",
]
