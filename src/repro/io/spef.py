"""SPEF-style parasitics writer and reader.

Serialises the router's per-net RC trees in a SPEF-like format
(``*D_NET`` blocks with ``*CAP`` and ``*RES`` sections) and parses the
same subset back into :class:`~repro.sta.rc.RCTree` objects.  This is
how signoff parasitics would be handed between the router and an
external STA tool.
"""

from __future__ import annotations

import re
from typing import Dict

from ..netlist import Netlist
from ..route.router import GlobalRouter
from ..sta.rc import RCTree


def write_spef(netlist: Netlist, router: GlobalRouter) -> str:
    """Serialise routed parasitics as SPEF-like text."""
    lines = [
        '*SPEF "IEEE 1481-like"',
        f'*DESIGN "{netlist.name}"',
        '*T_UNIT 1 NS',
        '*C_UNIT 1 PF',
        '*R_UNIT 1 KOHM',
    ]
    by_index = {net.index: net for net in netlist.nets.values()}
    for net_index in sorted(router.trees):
        net = by_index[net_index]
        tree = router.trees[net_index]
        lines.append(f"*D_NET {net.name} {tree.total_cap():.6g}")
        lines.append("*CAP")
        for node in tree.nodes:
            lines.append(f"{node.index} {node.cap:.6g}")
        lines.append("*RES")
        for node in tree.nodes[1:]:
            lines.append(f"{node.parent} {node.index} {node.res:.6g}")
        lines.append("*SINKS")
        for pin_index, tree_node in sorted(tree.sink_node.items()):
            pin = netlist.pins[pin_index]
            lines.append(f"{pin.full_name} {tree_node}")
        lines.append("*END")
    return "\n".join(lines) + "\n"


class SpefParseError(ValueError):
    """Raised on malformed SPEF text."""


def parse_spef(text: str, netlist: Netlist) -> Dict[int, RCTree]:
    """Parse SPEF written by :func:`write_spef`.

    Returns RC trees keyed by net index (the router's convention), with
    sink pins re-resolved against ``netlist``.
    """
    pin_by_name = {p.full_name: p for p in netlist.pins}
    trees: Dict[int, RCTree] = {}
    blocks = re.split(r"\*D_NET ", text)[1:]
    for block in blocks:
        header, rest = block.split("\n", 1)
        net_name = header.split()[0]
        net = netlist.nets.get(net_name)
        if net is None:
            raise SpefParseError(f"net {net_name} not in netlist")

        cap_text = re.search(r"\*CAP\n(.*?)\n\*RES", rest, re.DOTALL)
        res_text = re.search(r"\*RES\n(.*?)\n\*SINKS", rest, re.DOTALL)
        sink_text = re.search(r"\*SINKS\n(.*?)\n\*END", rest, re.DOTALL)
        if not (cap_text and res_text and sink_text):
            raise SpefParseError(f"net {net_name}: malformed block")

        caps = {}
        for line in cap_text.group(1).strip().splitlines():
            idx, cap = line.split()
            caps[int(idx)] = float(cap)

        tree = RCTree()
        tree.nodes[0].cap = caps.get(0, 0.0)
        for line in res_text.group(1).strip().splitlines():
            parent, idx, res = line.split()
            node = tree.add_node(int(parent), float(res),
                                 caps.get(int(idx), 0.0))
            if node != int(idx):
                raise SpefParseError(
                    f"net {net_name}: non-sequential node ids"
                )

        for line in sink_text.group(1).strip().splitlines():
            pin_name, node = line.rsplit(" ", 1)
            pin = pin_by_name.get(pin_name)
            if pin is None:
                raise SpefParseError(f"unknown sink pin {pin_name}")
            # Caps were already lumped at write time; attach without
            # double-counting the pin capacitance.
            tree.sink_node[pin.index] = int(node)
        trees[net.index] = tree
    return trees
