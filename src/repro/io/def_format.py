"""Simplified DEF (Design Exchange Format) writer and parser.

Covers the subset the flow needs to exchange placement: DIEAREA, ROW
statements, COMPONENTS with PLACED locations, and PINS with port
locations.  Distances use the customary DEF integer database units
(1000 DBU per micron).
"""

from __future__ import annotations

import re

from ..netlist import Netlist
from ..place import Floorplan, MacroRegion

DBU_PER_MICRON = 1000


def _dbu(value: float) -> int:
    return int(round(value * DBU_PER_MICRON))


def _um(value: str) -> float:
    return int(value) / DBU_PER_MICRON


def write_def(netlist: Netlist, floorplan: Floorplan) -> str:
    """Serialise placement as simplified DEF."""
    lines = [
        "VERSION 5.8 ;",
        f"DESIGN {netlist.name} ;",
        f"UNITS DISTANCE MICRONS {DBU_PER_MICRON} ;",
        f"DIEAREA ( 0 0 ) ( {_dbu(floorplan.width)} "
        f"{_dbu(floorplan.height)} ) ;",
    ]
    for row in range(floorplan.num_rows):
        y = _dbu(row * floorplan.row_height)
        lines.append(
            f"ROW row_{row} core 0 {y} N ;"
        )
    for i, macro in enumerate(floorplan.macros):
        lines.append(
            f"REGION macro_{i} ( {_dbu(macro.x)} {_dbu(macro.y)} ) "
            f"( {_dbu(macro.x + macro.width)} "
            f"{_dbu(macro.y + macro.height)} ) ;"
        )

    lines.append(f"COMPONENTS {len(netlist.cells)} ;")
    for name in sorted(netlist.cells):
        inst = netlist.cells[name]
        lines.append(
            f"  - {name} {inst.ref.name} + PLACED "
            f"( {_dbu(inst.x)} {_dbu(inst.y)} ) N ;"
        )
    lines.append("END COMPONENTS")

    lines.append(f"PINS {len(netlist.ports)} ;")
    for name in sorted(netlist.ports):
        pin = netlist.ports[name]
        direction = "INPUT" if pin.direction == "output" else "OUTPUT"
        lines.append(
            f"  - {name} + DIRECTION {direction} + PLACED "
            f"( {_dbu(pin.x)} {_dbu(pin.y)} ) N ;"
        )
    lines.append("END PINS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


class DefParseError(ValueError):
    """Raised on malformed DEF text."""


def parse_def(text: str, netlist: Netlist) -> Floorplan:
    """Apply a DEF's placement onto ``netlist`` and return the floorplan.

    Component and pin names must exist in the netlist (the usual DEF /
    netlist pairing contract).
    """
    die = re.search(
        r"DIEAREA \( 0 0 \) \( (\d+) (\d+) \)", text
    )
    if not die:
        raise DefParseError("missing DIEAREA")
    width, height = _um(die.group(1)), _um(die.group(2))

    rows = re.findall(r"ROW \S+ \S+ \d+ (\d+) N ;", text)
    if len(rows) >= 2:
        ys = sorted({_um(y) for y in rows})
        row_height = ys[1] - ys[0]
    else:
        row_height = netlist.library.site[1]

    floorplan = Floorplan(width=width, height=height,
                          row_height=row_height,
                          site_width=netlist.library.site[0])
    for match in re.finditer(
        r"REGION \S+ \( (\d+) (\d+) \) \( (\d+) (\d+) \)", text
    ):
        x0, y0, x1, y1 = (_um(g) for g in match.groups())
        floorplan.macros.append(
            MacroRegion(x0, y0, x1 - x0, y1 - y0)
        )

    for match in re.finditer(
        r"- (\S+) (\S+) \+ PLACED \( (\d+) (\d+) \) N ;", text
    ):
        name, ref, x, y = match.groups()
        inst = netlist.cells.get(name)
        if inst is None:
            raise DefParseError(f"component {name} not in netlist")
        if inst.ref.name != ref:
            raise DefParseError(
                f"component {name} is {inst.ref.name}, DEF says {ref}"
            )
        inst.x, inst.y = _um(x), _um(y)
        for k, pin in enumerate(inst.pins.values()):
            pin.x = inst.x + 0.1 * floorplan.site_width * k
            pin.y = inst.y

    for match in re.finditer(
        r"- (\S+) \+ DIRECTION \S+ \+ PLACED \( (\d+) (\d+) \) N ;", text
    ):
        name, x, y = match.groups()
        pin = netlist.ports.get(name)
        if pin is None:
            raise DefParseError(f"pin {name} not in netlist")
        pin.x, pin.y = _um(x), _um(y)
    return floorplan
