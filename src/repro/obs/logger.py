"""Structured per-run telemetry: manifest, JSONL step stream, summary.

A *run* is one training invocation.  Its directory layout::

    runs/20260806-114233-train/
        manifest.json   what was run (config, seeds, code versions)
        steps.jsonl     streamed per-step / validation / event records
        summary.json    final per-design metrics + merged phase timings

``steps.jsonl`` is append-streamed and flushed per record, so a run
killed mid-training still leaves every completed step on disk; the
manifest is written before the first step for the same reason.  All
records are validated against :mod:`repro.obs.schema` at write time —
a malformed record raises in the writer's stack frame instead of
surfacing as a corrupt artifact later.

:class:`NullRunLogger` is the no-telemetry stand-in: trainers call the
logger unconditionally and library users who never pass one pay two
attribute lookups per step, no I/O.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from .schema import validate_manifest, validate_record, validate_summary

__all__ = ["NullRunLogger", "RunLogger", "build_manifest",
           "default_run_dir", "read_records", "repair_jsonl_tail"]


def repair_jsonl_tail(path: Union[str, Path]) -> Optional[str]:
    """Truncate a torn (partially written) final line off a JSONL file.

    A process killed mid-``write`` can leave a trailing fragment — a
    line without its newline, or half a JSON object.  This drops that
    fragment in place (everything up to the last newline survives) and
    returns the discarded text, or None when the file was clean.  Only
    the *final* line is ever touched; an undecodable line in the middle
    of the file is real corruption and is left for the schema validator
    to report.
    """
    path = Path(path)
    if not path.is_file():
        return None
    data = path.read_bytes()
    if not data:
        return None
    keep = len(data)
    if not data.endswith(b"\n"):
        keep = data.rfind(b"\n") + 1  # 0 when there is no newline at all
    else:
        # Ends in a newline; the last line is complete but may still be
        # half-written JSON if the crash hit between two buffered
        # writes.  Only drop it when it does not parse.
        body = data[:-1]
        start = body.rfind(b"\n") + 1
        last = data[start:].strip()
        if last:
            try:
                json.loads(last.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                keep = start
    if keep == len(data):
        return None
    fragment = data[keep:].decode("utf-8", errors="replace")
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return fragment


def read_records(path: Union[str, Path]
                 ) -> Tuple[List[Dict[str, Any]], Optional[str]]:
    """Parse a steps.jsonl file, tolerating a torn trailing line.

    Returns ``(records, torn_fragment)``: every line that parses as
    JSON, plus the raw text of an undecodable *final* line (None when
    the stream is clean).  An undecodable line elsewhere raises — that
    is corruption, not a crash artifact.
    """
    path = Path(path)
    lines = path.read_text("utf-8").splitlines()
    while lines and not lines[-1].strip():
        lines.pop()
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if lineno == len(lines) - 1:
                return records, line
            raise ValueError(
                f"{path}:{lineno + 1}: undecodable record mid-stream "
                f"({exc})"
            ) from exc
    return records, None


def default_run_dir(tag: str = "train",
                    root: Union[str, Path] = "runs") -> Path:
    """``<root>/<timestamp>-<tag>``, uniquified if it already exists."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    base = Path(root) / f"{stamp}-{tag}"
    candidate = base
    suffix = 2
    while candidate.exists():
        candidate = base.with_name(f"{base.name}-{suffix}")
        suffix += 1
    return candidate


def _git_sha() -> Optional[str]:
    """HEAD commit of the source checkout, or None outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _package_versions() -> Dict[str, Optional[str]]:
    import platform

    versions: Dict[str, Optional[str]] = {
        "python": platform.python_version(),
    }
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - py<3.8 only
        metadata = None
    for package in ("numpy", "scipy", "networkx", "repro"):
        version: Optional[str] = None
        if metadata is not None:
            try:
                version = metadata.version(package)
            except metadata.PackageNotFoundError:
                version = None
        if version is None and package == "numpy":
            import numpy as np

            version = np.__version__
        versions[package] = version
    return versions


def build_manifest(config: Any = None,
                   seeds: Optional[Mapping[str, int]] = None,
                   extra: Optional[Mapping[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Assemble a run manifest (provenance record).

    Parameters
    ----------
    config:
        The training config (a dataclass such as ``TrainConfig``, or a
        plain mapping); serialised in full so two runs can be diffed
        field by field.
    seeds:
        Every seed that influenced the run.  When omitted and the
        config has a ``seed`` attribute, that one is recorded.
    extra:
        Additional top-level sections (dataset parameters, CLI args).
    """
    # Lazy import: obs stays importable without pulling the flow stack.
    from ..flow.cache import CODE_SALT

    if is_dataclass(config) and not isinstance(config, type):
        config_dict: Any = asdict(config)
    elif isinstance(config, Mapping):
        config_dict = dict(config)
    else:
        config_dict = config if config is None else vars(config)

    if seeds is None:
        seed = getattr(config, "seed", None) if config is not None else None
        seeds = {"train": seed} if seed is not None else {}

    manifest: Dict[str, Any] = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "argv": list(sys.argv),
        "train_config": config_dict,
        "seeds": dict(seeds),
        "code": {
            "code_salt": CODE_SALT,
            "git_sha": _git_sha(),
        },
        "versions": _package_versions(),
    }
    if extra:
        manifest.update({str(k): v for k, v in extra.items()})
    return manifest


class RunLogger:
    """Writes one run's telemetry into ``run_dir`` (context manager).

    Parameters
    ----------
    run_dir:
        Directory for this run's artifacts; created (with parents) if
        missing.  One logger per run — the step stream is truncated on
        construction unless ``resume`` is set.
    resume:
        Reopen an existing run for continuation: the step stream is
        opened in *append* mode after a torn trailing line (a crash
        artifact) is repaired away, and the existing manifest survives.
    resume_step:
        When resuming from a checkpoint taken at step *k*, records the
        crashed process wrote **after** that checkpoint (``step >= k``)
        are dropped before appending — the resumed run re-executes and
        re-logs those steps, and keeping both copies would corrupt the
        stream.
    """

    def __init__(self, run_dir: Union[str, Path], resume: bool = False,
                 resume_step: Optional[int] = None) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        steps_path = self.run_dir / "steps.jsonl"
        mode = "a" if resume else "w"
        if resume and steps_path.is_file():
            repair_jsonl_tail(steps_path)
            if resume_step is not None:
                self._drop_records_from(steps_path, int(resume_step))
        self._steps = open(steps_path, mode, encoding="utf-8")

    @staticmethod
    def _drop_records_from(path: Path, start_step: int) -> int:
        """Atomically rewrite ``path`` without records at/after a step.

        Records carrying no ``step`` field (events) are kept.  Returns
        the number of dropped records.
        """
        records, _ = read_records(path)
        kept = [r for r in records
                if not isinstance(r.get("step"), int)
                or r["step"] < start_step]
        dropped = len(records) - len(kept)
        if dropped:
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            tmp.write_text(
                "".join(json.dumps(r, sort_keys=True) + "\n"
                        for r in kept),
                encoding="utf-8")
            os.replace(tmp, path)
        return dropped

    # -- artifacts ------------------------------------------------------
    def log_manifest(self, config: Any = None,
                     seeds: Optional[Mapping[str, int]] = None,
                     extra: Optional[Mapping[str, Any]] = None
                     ) -> Dict[str, Any]:
        """Build + persist ``manifest.json``; returns the manifest."""
        manifest = build_manifest(config=config, seeds=seeds, extra=extra)
        problems = validate_manifest(manifest)
        if problems:
            raise ValueError(f"invalid manifest: {problems}")
        self._write_json("manifest.json", manifest)
        return manifest

    def log_step(self, step: int, record: Mapping[str, Any]) -> None:
        """Stream one per-step record (losses, lr, grad norms, ...)."""
        self._emit({"kind": "step", "step": int(step), **record})

    def log_validation(self, step: int, score: float, best: bool) -> None:
        """Stream one held-out validation event."""
        self._emit({"kind": "validation", "step": int(step),
                    "score": float(score), "best": bool(best)})

    def log_event(self, kind: str, **fields: Any) -> None:
        """Stream a non-step record (``final_weights``, ``note``, ...)."""
        self._emit({"kind": kind, **fields})

    def log_summary(self, **fields: Any) -> Dict[str, Any]:
        """Persist ``summary.json``; merges in the timing registry.

        ``timings`` defaults to the process-global registry snapshot
        (which, after a ``build_designs(workers=N)``, already contains
        the merged worker timings); ``per_design`` defaults to empty.
        """
        summary = dict(fields)
        if "timings" not in summary:
            from ..util import get_timings

            summary["timings"] = get_timings()
        summary.setdefault("per_design", {})
        problems = validate_summary(summary)
        if problems:
            raise ValueError(f"invalid summary: {problems}")
        self._write_json("summary.json", summary)
        return summary

    def annotate_manifest(self, **fields: Any) -> Dict[str, Any]:
        """Merge extra top-level fields into an existing manifest.json.

        Used for after-the-fact lifecycle markers: ``interrupted: true``
        when a signal stopped the run, ``resumed_from_step`` when a
        later invocation picked it back up.  The rewrite is atomic, so
        a crash here cannot destroy the manifest either.
        """
        path = self.run_dir / "manifest.json"
        manifest: Dict[str, Any] = {}
        if path.is_file():
            manifest = json.loads(path.read_text("utf-8"))
        manifest.update({str(k): v for k, v in fields.items()})
        self._write_json("manifest.json", manifest)
        return manifest

    # -- plumbing -------------------------------------------------------
    def _emit(self, record: Dict[str, Any]) -> None:
        problems = validate_record(record)
        if problems:
            raise ValueError(f"invalid telemetry record: {problems}")
        self._steps.write(json.dumps(record, sort_keys=True) + "\n")
        self._steps.flush()

    def _write_json(self, name: str, payload: Mapping[str, Any]) -> None:
        # Temp-file + rename: a crash mid-write must never leave a
        # truncated manifest.json/summary.json — a resumed run needs
        # both intact.
        path = self.run_dir / name
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True)
                       + "\n", encoding="utf-8")
        os.replace(tmp, path)

    def close(self) -> None:
        if not self._steps.closed:
            self._steps.close()

    def __enter__(self) -> "RunLogger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullRunLogger:
    """API-compatible logger that records nothing (the default)."""

    run_dir: Optional[Path] = None

    def log_manifest(self, config: Any = None,
                     seeds: Optional[Mapping[str, int]] = None,
                     extra: Optional[Mapping[str, Any]] = None
                     ) -> Dict[str, Any]:
        return {}

    def log_step(self, step: int, record: Mapping[str, Any]) -> None:
        pass

    def log_validation(self, step: int, score: float, best: bool) -> None:
        pass

    def log_event(self, kind: str, **fields: Any) -> None:
        pass

    def log_summary(self, **fields: Any) -> Dict[str, Any]:
        return {}

    def annotate_manifest(self, **fields: Any) -> Dict[str, Any]:
        return {}

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullRunLogger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass
