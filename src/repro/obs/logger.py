"""Structured per-run telemetry: manifest, JSONL step stream, summary.

A *run* is one training invocation.  Its directory layout::

    runs/20260806-114233-train/
        manifest.json   what was run (config, seeds, code versions)
        steps.jsonl     streamed per-step / validation / event records
        summary.json    final per-design metrics + merged phase timings

``steps.jsonl`` is append-streamed and flushed per record, so a run
killed mid-training still leaves every completed step on disk; the
manifest is written before the first step for the same reason.  All
records are validated against :mod:`repro.obs.schema` at write time —
a malformed record raises in the writer's stack frame instead of
surfacing as a corrupt artifact later.

:class:`NullRunLogger` is the no-telemetry stand-in: trainers call the
logger unconditionally and library users who never pass one pay two
attribute lookups per step, no I/O.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from .schema import validate_manifest, validate_record, validate_summary

__all__ = ["NullRunLogger", "RunLogger", "build_manifest",
           "default_run_dir"]


def default_run_dir(tag: str = "train",
                    root: Union[str, Path] = "runs") -> Path:
    """``<root>/<timestamp>-<tag>``, uniquified if it already exists."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    base = Path(root) / f"{stamp}-{tag}"
    candidate = base
    suffix = 2
    while candidate.exists():
        candidate = base.with_name(f"{base.name}-{suffix}")
        suffix += 1
    return candidate


def _git_sha() -> Optional[str]:
    """HEAD commit of the source checkout, or None outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _package_versions() -> Dict[str, Optional[str]]:
    import platform

    versions: Dict[str, Optional[str]] = {
        "python": platform.python_version(),
    }
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - py<3.8 only
        metadata = None
    for package in ("numpy", "scipy", "networkx", "repro"):
        version: Optional[str] = None
        if metadata is not None:
            try:
                version = metadata.version(package)
            except metadata.PackageNotFoundError:
                version = None
        if version is None and package == "numpy":
            import numpy as np

            version = np.__version__
        versions[package] = version
    return versions


def build_manifest(config: Any = None,
                   seeds: Optional[Mapping[str, int]] = None,
                   extra: Optional[Mapping[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Assemble a run manifest (provenance record).

    Parameters
    ----------
    config:
        The training config (a dataclass such as ``TrainConfig``, or a
        plain mapping); serialised in full so two runs can be diffed
        field by field.
    seeds:
        Every seed that influenced the run.  When omitted and the
        config has a ``seed`` attribute, that one is recorded.
    extra:
        Additional top-level sections (dataset parameters, CLI args).
    """
    # Lazy import: obs stays importable without pulling the flow stack.
    from ..flow.cache import CODE_SALT

    if is_dataclass(config) and not isinstance(config, type):
        config_dict: Any = asdict(config)
    elif isinstance(config, Mapping):
        config_dict = dict(config)
    else:
        config_dict = config if config is None else vars(config)

    if seeds is None:
        seed = getattr(config, "seed", None) if config is not None else None
        seeds = {"train": seed} if seed is not None else {}

    manifest: Dict[str, Any] = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "argv": list(sys.argv),
        "train_config": config_dict,
        "seeds": dict(seeds),
        "code": {
            "code_salt": CODE_SALT,
            "git_sha": _git_sha(),
        },
        "versions": _package_versions(),
    }
    if extra:
        manifest.update({str(k): v for k, v in extra.items()})
    return manifest


class RunLogger:
    """Writes one run's telemetry into ``run_dir`` (context manager).

    Parameters
    ----------
    run_dir:
        Directory for this run's artifacts; created (with parents) if
        missing.  One logger per run — the step stream is truncated on
        construction.
    """

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._steps = open(self.run_dir / "steps.jsonl", "w",
                           encoding="utf-8")

    # -- artifacts ------------------------------------------------------
    def log_manifest(self, config: Any = None,
                     seeds: Optional[Mapping[str, int]] = None,
                     extra: Optional[Mapping[str, Any]] = None
                     ) -> Dict[str, Any]:
        """Build + persist ``manifest.json``; returns the manifest."""
        manifest = build_manifest(config=config, seeds=seeds, extra=extra)
        problems = validate_manifest(manifest)
        if problems:
            raise ValueError(f"invalid manifest: {problems}")
        self._write_json("manifest.json", manifest)
        return manifest

    def log_step(self, step: int, record: Mapping[str, Any]) -> None:
        """Stream one per-step record (losses, lr, grad norms, ...)."""
        self._emit({"kind": "step", "step": int(step), **record})

    def log_validation(self, step: int, score: float, best: bool) -> None:
        """Stream one held-out validation event."""
        self._emit({"kind": "validation", "step": int(step),
                    "score": float(score), "best": bool(best)})

    def log_event(self, kind: str, **fields: Any) -> None:
        """Stream a non-step record (``final_weights``, ``note``, ...)."""
        self._emit({"kind": kind, **fields})

    def log_summary(self, **fields: Any) -> Dict[str, Any]:
        """Persist ``summary.json``; merges in the timing registry.

        ``timings`` defaults to the process-global registry snapshot
        (which, after a ``build_designs(workers=N)``, already contains
        the merged worker timings); ``per_design`` defaults to empty.
        """
        summary = dict(fields)
        if "timings" not in summary:
            from ..util import get_timings

            summary["timings"] = get_timings()
        summary.setdefault("per_design", {})
        problems = validate_summary(summary)
        if problems:
            raise ValueError(f"invalid summary: {problems}")
        self._write_json("summary.json", summary)
        return summary

    # -- plumbing -------------------------------------------------------
    def _emit(self, record: Dict[str, Any]) -> None:
        problems = validate_record(record)
        if problems:
            raise ValueError(f"invalid telemetry record: {problems}")
        self._steps.write(json.dumps(record, sort_keys=True) + "\n")
        self._steps.flush()

    def _write_json(self, name: str, payload: Mapping[str, Any]) -> None:
        path = self.run_dir / name
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")

    def close(self) -> None:
        if not self._steps.closed:
            self._steps.close()

    def __enter__(self) -> "RunLogger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullRunLogger:
    """API-compatible logger that records nothing (the default)."""

    run_dir: Optional[Path] = None

    def log_manifest(self, config: Any = None,
                     seeds: Optional[Mapping[str, int]] = None,
                     extra: Optional[Mapping[str, Any]] = None
                     ) -> Dict[str, Any]:
        return {}

    def log_step(self, step: int, record: Mapping[str, Any]) -> None:
        pass

    def log_validation(self, step: int, score: float, best: bool) -> None:
        pass

    def log_event(self, kind: str, **fields: Any) -> None:
        pass

    def log_summary(self, **fields: Any) -> Dict[str, Any]:
        return {}

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullRunLogger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass
