"""Render a run directory as a terminal report (``repro report-run``).

Three renderers, composable and individually testable:

- :func:`render_loss_curve` — fixed-size ASCII chart of one series;
- :func:`manifest_diff` — field-by-field diff of two manifests
  (nested dicts are flattened to dotted paths);
- :func:`render_run` — the full report: manifest header, one chart per
  loss series, validation history, per-design metrics, and the merged
  phase-timing table (which includes phases measured inside
  ``build_designs`` worker processes — see ``repro.util.merge_timings``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Union

from ..util import format_timing_table

__all__ = ["load_run", "manifest_diff", "render_loss_curve", "render_run"]

#: Step-record fields that are bookkeeping, not loss series.
_NON_SERIES_FIELDS = frozenset({
    "kind", "step", "lr", "step_seconds", "warmup", "stage",
    "grad_norm", "grad_norm_clipped",
    # Data-parallel execution telemetry (ParallelTrainer step records)
    # — machine facts, not loss series.
    "workers", "shard_seconds_max", "shard_seconds_mean",
})

#: Preferred ordering for the series charts (anything else follows,
#: alphabetically).
_SERIES_ORDER = ("total", "loss", "elbo", "contrastive", "cmd")


def render_loss_curve(values: Sequence[float], title: str = "",
                      width: int = 60, height: int = 10) -> str:
    """One series as a fixed-size ASCII chart (min/max annotated).

    Longer series are bucket-averaged down to ``width`` columns, so a
    10k-step run still renders as one readable chart.
    """
    values = [float(v) for v in values]
    if not values:
        return f"{title}: (no data)"
    n = len(values)
    columns: List[float] = []
    buckets = min(width, n)
    for b in range(buckets):
        lo = b * n // buckets
        hi = max(lo + 1, (b + 1) * n // buckets)
        chunk = values[lo:hi]
        columns.append(sum(chunk) / len(chunk))

    vmin, vmax = min(columns), max(columns)
    span = vmax - vmin
    lines = [f"{title}  [first {values[0]:.6g}  last {values[-1]:.6g}  "
             f"min {vmin:.6g}  max {vmax:.6g}]"]
    if span <= 0:
        lines.append("  " + "-" * buckets + "  (constant)")
        return "\n".join(lines)
    rows = []
    for r in range(height):
        upper = vmax - span * r / height
        lower = vmax - span * (r + 1) / height
        marks = []
        for v in columns:
            # The bottom row owns its lower edge so the minimum lands
            # inside the chart.
            hit = (lower < v <= upper) if r < height - 1 else (v <= upper)
            marks.append("*" if hit else " ")
        edge = vmax if r == 0 else (vmin if r == height - 1 else None)
        label = f"{edge:>10.4g} |" if edge is not None else " " * 10 + " |"
        rows.append(label + "".join(marks))
    lines.extend(rows)
    lines.append(" " * 10 + " +" + "-" * buckets)
    lines.append(" " * 12 + f"steps 0..{n - 1}")
    return "\n".join(lines)


def _flatten(mapping: Mapping[str, Any], prefix: str = ""
             ) -> Dict[str, Any]:
    flat: Dict[str, Any] = {}
    for key, value in mapping.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(_flatten(value, prefix=f"{dotted}."))
        else:
            flat[dotted] = value
    return flat


def manifest_diff(a: Mapping[str, Any], b: Mapping[str, Any],
                  label_a: str = "this run", label_b: str = "other run"
                  ) -> str:
    """Field-level diff of two manifests (dotted keys, changed-only)."""
    flat_a, flat_b = _flatten(a), _flatten(b)
    lines: List[str] = []
    for key in sorted(set(flat_a) | set(flat_b)):
        if key == "created" or key.startswith("argv"):
            continue  # always differs; noise in a config diff
        in_a, in_b = key in flat_a, key in flat_b
        if in_a and not in_b:
            lines.append(f"  - {key}: {flat_a[key]!r}  (only in {label_a})")
        elif in_b and not in_a:
            lines.append(f"  + {key}: {flat_b[key]!r}  (only in {label_b})")
        elif flat_a[key] != flat_b[key]:
            lines.append(f"  ~ {key}: {flat_a[key]!r} -> {flat_b[key]!r}")
    if not lines:
        return "  (manifests agree on every field)"
    return "\n".join(lines)


def load_run(run_dir: Union[str, Path]) -> Dict[str, Any]:
    """Parse a run directory's artifacts (missing ones load as empty).

    A torn trailing line in ``steps.jsonl`` (crash artifact) is
    tolerated: every completed record still loads, and the fragment is
    surfaced as ``torn_tail`` so the report can mention it.
    """
    from .logger import read_records

    run_dir = Path(run_dir)
    out: Dict[str, Any] = {"manifest": {}, "records": [], "summary": {},
                           "torn_tail": None}
    manifest = run_dir / "manifest.json"
    if manifest.is_file():
        out["manifest"] = json.loads(manifest.read_text("utf-8"))
    steps = run_dir / "steps.jsonl"
    if steps.is_file():
        out["records"], out["torn_tail"] = read_records(steps)
    summary = run_dir / "summary.json"
    if summary.is_file():
        out["summary"] = json.loads(summary.read_text("utf-8"))
    return out


def _series_keys(steps: Sequence[Mapping[str, Any]]) -> List[str]:
    seen = set()
    for record in steps:
        for key, value in record.items():
            if key in _NON_SERIES_FIELDS or isinstance(value, (str, bool)):
                continue
            if isinstance(value, (int, float)):
                seen.add(key)
    ordered = [k for k in _SERIES_ORDER if k in seen]
    ordered.extend(sorted(seen - set(ordered)))
    return ordered


def render_run(run_dir: Union[str, Path],
               diff_against: Union[str, Path, None] = None,
               width: int = 60, height: int = 10) -> str:
    """The full terminal report for one run directory."""
    run_dir = Path(run_dir)
    run = load_run(run_dir)
    manifest, summary = run["manifest"], run["summary"]
    records = run["records"]
    steps = [r for r in records if r.get("kind") == "step"]
    validations = [r for r in records if r.get("kind") == "validation"]

    sections: List[str] = [f"run: {run_dir}"]

    # -- manifest header ----------------------------------------------
    if manifest:
        code = manifest.get("code", {})
        versions = manifest.get("versions", {})
        head = [f"created {manifest.get('created', '?')}",
                f"code_salt {code.get('code_salt', '?')}"]
        if code.get("git_sha"):
            head.append(f"git {code['git_sha'][:12]}")
        head.append(f"python {versions.get('python', '?')}")
        head.append(f"numpy {versions.get('numpy', '?')}")
        sections.append("  ".join(head))
        config = manifest.get("train_config") or {}
        if config:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(config.items()))
            sections.append(f"config: {pairs}")
        seeds = manifest.get("seeds") or {}
        if seeds:
            sections.append("seeds: " + ", ".join(
                f"{k}={v}" for k, v in sorted(seeds.items())))
    else:
        sections.append("(no manifest.json)")

    # -- crash/resume lifecycle ---------------------------------------
    if manifest.get("interrupted"):
        sections.append("status: INTERRUPTED — resumable with "
                        f"`repro train --resume {run_dir}`")
    if manifest.get("resumed_from_step") is not None:
        sections.append(
            f"resumed: from checkpoint at step "
            f"{manifest['resumed_from_step']}")
    if run.get("torn_tail"):
        sections.append("note: steps.jsonl has a torn trailing line "
                        "(crash artifact; repaired on --resume)")

    # -- loss curves ---------------------------------------------------
    if steps:
        sections.append("")
        for key in _series_keys(steps):
            series = [r[key] for r in steps if key in r]
            sections.append(render_loss_curve(series, title=key,
                                              width=width, height=height))
            sections.append("")
    else:
        sections.append("(no step records)")

    # -- validation history -------------------------------------------
    if validations:
        parts = [f"step {r['step']}: {r['score']:.4f}"
                 + (" *" if r.get("best") else "")
                 for r in validations]
        sections.append("validation R^2 (* = kept): " + "  ".join(parts))
    finals = [r for r in records if r.get("kind") == "final_weights"]
    if finals:
        # Multi-stage recipes (PT-FT) emit one per stage; the last one
        # describes the weights actually returned.
        sections.append(f"final weights: {finals[-1].get('source')}")

    # -- summary -------------------------------------------------------
    per_design = summary.get("per_design") or {}
    if per_design:
        sections.append("")
        sections.append("per-design metrics:")
        metric_keys = sorted({k for m in per_design.values() for k in m})
        for name in sorted(per_design):
            metrics = per_design[name]
            sections.append("  " + f"{name:>14}: " + "  ".join(
                f"{k}={metrics[k]:.4f}" for k in metric_keys
                if k in metrics))
    for key in ("mean_r2", "steps", "total_seconds"):
        if key in summary:
            sections.append(f"{key}: {summary[key]}")

    timings = summary.get("timings") or {}
    if timings:
        sections.append("")
        sections.append("phase timings (incl. worker processes):")
        sections.append(format_timing_table(timings))

    # -- manifest diff -------------------------------------------------
    if diff_against is not None:
        other = load_run(diff_against)["manifest"]
        sections.append("")
        sections.append(f"manifest diff vs {diff_against}:")
        sections.append(manifest_diff(manifest, other,
                                      label_a=str(run_dir),
                                      label_b=str(diff_against)))

    return "\n".join(sections)

