"""``python -m repro.obs RUNDIR`` — validate run telemetry against the schema.

Exits nonzero when any artifact is missing, unparseable, or violates
the record schema; CI runs this over the smoke-train run directory so
a silently broken telemetry writer fails the build.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .schema import validate_run_dir


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="validate a run directory's telemetry artifacts",
    )
    parser.add_argument("run_dir", help="run directory to validate")
    args = parser.parse_args(argv)

    errors = validate_run_dir(args.run_dir)
    for error in errors:
        print(f"{args.run_dir}: {error}")
    if errors:
        print(f"repro.obs: {len(errors)} schema problem(s)")
        return 1
    print(f"repro.obs: {args.run_dir} valid "
          "(manifest.json, steps.jsonl, summary.json)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
