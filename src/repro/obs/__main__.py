"""``python -m repro.obs RUNDIR`` — validate run telemetry against the schema.

Exits nonzero when any artifact is missing, unparseable, or violates
the record schema; CI runs this over the smoke-train run directory so
a silently broken telemetry writer fails the build.

``python -m repro.obs --bench BENCH_inference.json`` validates an
inference-benchmark payload instead (same exit convention), and
``--bench-serving BENCH_serving.json`` validates a serving-benchmark
payload; CI runs both over the smoke benches' outputs.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

from .schema import (
    validate_bench_inference,
    validate_bench_serving,
    validate_run_dir,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="validate run telemetry (or a bench payload) "
                    "against the schema",
    )
    parser.add_argument("run_dir", nargs="?", default=None,
                        help="run directory to validate")
    parser.add_argument("--bench", default=None, metavar="JSON",
                        help="validate a BENCH_inference.json payload "
                             "instead of a run directory")
    parser.add_argument("--bench-serving", default=None, metavar="JSON",
                        help="validate a BENCH_serving.json payload "
                             "instead of a run directory")
    args = parser.parse_args(argv)
    targets = [t for t in (args.run_dir, args.bench, args.bench_serving)
               if t is not None]
    if len(targets) != 1:
        parser.error("give exactly one of RUNDIR, --bench JSON, or "
                     "--bench-serving JSON")

    warnings = []
    if args.bench is not None or args.bench_serving is not None:
        target = args.bench or args.bench_serving
        validate = validate_bench_inference if args.bench is not None \
            else validate_bench_serving
        try:
            payload = json.loads(
                open(target, encoding="utf-8").read())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{target}: unreadable ({exc})")
            return 1
        errors = validate(payload)
    else:
        errors = validate_run_dir(args.run_dir, warnings=warnings)
        target = args.run_dir

    # A torn trailing step line is a crash artifact, not corruption:
    # report it, but do not fail the run over it.
    for warning in warnings:
        print(f"{target}: warning: {warning}")
    for error in errors:
        print(f"{target}: {error}")
    if errors:
        print(f"repro.obs: {len(errors)} schema problem(s)")
        return 1
    if args.bench is not None:
        print(f"repro.obs: {target} valid (bench-inference schema)")
    elif args.bench_serving is not None:
        print(f"repro.obs: {target} valid (bench-serving schema)")
    else:
        print(f"repro.obs: {target} valid "
              "(manifest.json, steps.jsonl, summary.json)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
