"""Schema for run-telemetry artifacts (manifest, step stream, summary).

A run directory holds exactly three artifacts (see
:mod:`repro.obs.logger`):

``manifest.json``
    One JSON object describing *what was run*: the full training
    config, every seed, code-version markers (flow cache salt, git
    SHA), and package versions.

``steps.jsonl``
    One JSON object per line, streamed during training.  Every record
    carries a ``kind``; the known kinds and their required fields are
    in :data:`RECORD_SCHEMAS`.  Records may carry extra fields (e.g.
    per-loss-term values differ between ours and the baselines) — the
    schema pins the invariants, not the full shape.

``summary.json``
    One JSON object with final per-design metrics and the merged
    timing registry.

Everything here is dependency-free validation used three ways: by
``RunLogger`` at write time (a malformed record fails fast, in the
writer's stack frame), by the test suite, and by CI via
``python -m repro.obs RUNDIR``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "BENCH_INFERENCE_SCHEMA",
    "BENCH_SERVING_SCHEMA",
    "MANIFEST_REQUIRED",
    "RECORD_SCHEMAS",
    "SUMMARY_REQUIRED",
    "validate_bench_inference",
    "validate_bench_serving",
    "validate_manifest",
    "validate_record",
    "validate_run_dir",
    "validate_summary",
]

#: ``kind`` -> required fields and their accepted types.  ``bool`` is a
#: subclass of ``int``, so numeric slots explicitly reject it.
RECORD_SCHEMAS: Dict[str, Dict[str, Tuple[type, ...]]] = {
    # One optimisation step.  Loss-term fields vary per strategy and
    # ride along as extras (``total``/``elbo``/... for ours, ``loss``
    # for the MSE baselines).
    "step": {
        "step": (int,),
        "lr": (int, float),
        "step_seconds": (int, float),
    },
    # One held-out validation evaluation; ``best`` says whether the
    # checkpoint keeper adopted this snapshot.
    "validation": {
        "step": (int,),
        "score": (int, float),
        "best": (bool,),
    },
    # Which weights ended up in the returned model.
    "final_weights": {
        "source": (str,),
    },
    # Freeform annotation (phase transitions, warnings, ...).
    "note": {
        "message": (str,),
    },
}

#: Dotted paths that must exist in every manifest.
MANIFEST_REQUIRED = (
    "created",
    "train_config",
    "seeds",
    "code.code_salt",
    "versions.python",
    "versions.numpy",
)

#: Top-level keys every summary must carry.
SUMMARY_REQUIRED = ("per_design", "timings")

_SCALAR = (str, int, float, bool, type(None))


def _dig(mapping: Mapping[str, Any], dotted: str) -> Any:
    node: Any = mapping
    for part in dotted.split("."):
        if not isinstance(node, Mapping) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    return node


def _type_ok(value: Any, types: Tuple[type, ...]) -> bool:
    if not isinstance(value, types):
        return False
    # bool passes isinstance(..., int); keep flag fields and numeric
    # fields distinct.
    if bool not in types and isinstance(value, bool):
        return False
    return True


def validate_record(record: Any) -> List[str]:
    """Problems with one steps.jsonl record ([] when valid)."""
    if not isinstance(record, Mapping):
        return [f"record is not an object: {record!r}"]
    kind = record.get("kind")
    if not isinstance(kind, str):
        return ["record has no string 'kind' field"]
    schema = RECORD_SCHEMAS.get(kind)
    if schema is None:
        return [f"unknown record kind {kind!r} "
                f"(known: {', '.join(sorted(RECORD_SCHEMAS))})"]
    errors = []
    for field, types in schema.items():
        if field not in record:
            errors.append(f"{kind} record missing field {field!r}")
        elif not _type_ok(record[field], types):
            errors.append(
                f"{kind} record field {field!r} has type "
                f"{type(record[field]).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    for field, value in record.items():
        if not isinstance(value, _SCALAR):
            errors.append(f"{kind} record field {field!r} is not a JSON "
                          f"scalar: {type(value).__name__}")
    return errors


def validate_manifest(manifest: Any) -> List[str]:
    """Problems with a manifest object ([] when valid)."""
    if not isinstance(manifest, Mapping):
        return ["manifest is not an object"]
    errors = []
    for dotted in MANIFEST_REQUIRED:
        try:
            _dig(manifest, dotted)
        except KeyError:
            errors.append(f"manifest missing required field {dotted!r}")
    return errors


def validate_summary(summary: Any) -> List[str]:
    """Problems with a summary object ([] when valid)."""
    if not isinstance(summary, Mapping):
        return ["summary is not an object"]
    errors = []
    for key in SUMMARY_REQUIRED:
        if key not in summary:
            errors.append(f"summary missing required field {key!r}")
    per_design = summary.get("per_design")
    if per_design is not None and not isinstance(per_design, Mapping):
        errors.append("summary 'per_design' is not an object")
    timings = summary.get("timings")
    if isinstance(timings, Mapping):
        for name, entry in timings.items():
            if not (isinstance(entry, Mapping)
                    and "calls" in entry and "seconds" in entry):
                errors.append(f"summary timing {name!r} lacks "
                              "calls/seconds")
    elif timings is not None:
        errors.append("summary 'timings' is not an object")
    return errors


#: section -> required numeric/typed fields of ``BENCH_inference.json``
#: (written by ``benchmarks/bench_inference.py``, validated in CI via
#: ``python -m repro.obs --bench``).
BENCH_INFERENCE_SCHEMA: Dict[str, Dict[str, Tuple[type, ...]]] = {
    "single_design": {
        "design": (str,),
        "cold_seconds": (int, float),
        "warm_seconds": (int, float),
        "speedup": (int, float),
        "repeats": (int,),
        "statistic": (str,),
    },
    "forward": {
        "autograd_seconds": (int, float),
        "nograd_seconds": (int, float),
        "speedup": (int, float),
    },
    "batched": {
        "looped_autograd_seconds": (int, float),
        "fused_nograd_seconds": (int, float),
        "speedup": (int, float),
        "num_designs": (int,),
        "num_endpoints": (int,),
    },
    "throughput": {
        "endpoints_per_second_warm": (int, float),
        "endpoints_per_second_cold": (int, float),
    },
    "equivalence": {
        "max_abs_diff": (int, float),
        "atol": (int, float),
    },
}


def validate_bench_inference(payload: Any) -> List[str]:
    """Problems with a ``BENCH_inference.json`` object ([] when valid)."""
    if not isinstance(payload, Mapping):
        return ["bench payload is not an object"]
    errors = []
    for section, fields in BENCH_INFERENCE_SCHEMA.items():
        block = payload.get(section)
        if not isinstance(block, Mapping):
            errors.append(f"bench missing section {section!r}")
            continue
        for field, types in fields.items():
            if field not in block:
                errors.append(f"bench {section}.{field} missing")
            elif not _type_ok(block[field], types):
                errors.append(
                    f"bench {section}.{field} has type "
                    f"{type(block[field]).__name__}, expected "
                    f"{'/'.join(t.__name__ for t in types)}"
                )
    if not isinstance(payload.get("smoke"), bool):
        errors.append("bench missing boolean 'smoke' flag")
    return errors


#: section -> required fields of ``BENCH_serving.json`` (written by
#: ``benchmarks/bench_serving.py``, validated in CI via
#: ``python -m repro.obs --bench-serving``).  ``coalesced`` is the
#: server with the batching window open, ``uncoalesced`` the identical
#: server at window 0; ``speedup`` is their throughput ratio and
#: ``equivalence`` the max deviation of a served prediction from the
#: direct in-process engine answer.
BENCH_SERVING_SCHEMA: Dict[str, Dict[str, Tuple[type, ...]]] = {
    "coalesced": {
        "requests_per_second": (int, float),
        "p50_ms": (int, float),
        "p99_ms": (int, float),
        "clients": (int,),
        "requests": (int,),
        "batch_window_ms": (int, float),
        "max_batch": (int,),
        "mean_batch_size": (int, float),
    },
    "uncoalesced": {
        "requests_per_second": (int, float),
        "p50_ms": (int, float),
        "p99_ms": (int, float),
        "clients": (int,),
        "requests": (int,),
    },
    "speedup": {
        "throughput_ratio": (int, float),
    },
    "equivalence": {
        "max_abs_diff": (int, float),
        "atol": (int, float),
    },
}


def validate_bench_serving(payload: Any) -> List[str]:
    """Problems with a ``BENCH_serving.json`` object ([] when valid)."""
    if not isinstance(payload, Mapping):
        return ["bench payload is not an object"]
    errors = []
    for section, fields in BENCH_SERVING_SCHEMA.items():
        block = payload.get(section)
        if not isinstance(block, Mapping):
            errors.append(f"bench missing section {section!r}")
            continue
        for field, types in fields.items():
            if field not in block:
                errors.append(f"bench {section}.{field} missing")
            elif not _type_ok(block[field], types):
                errors.append(
                    f"bench {section}.{field} has type "
                    f"{type(block[field]).__name__}, expected "
                    f"{'/'.join(t.__name__ for t in types)}"
                )
    if not isinstance(payload.get("smoke"), bool):
        errors.append("bench missing boolean 'smoke' flag")
    return errors


def validate_run_dir(run_dir: Union[str, Path],
                     warnings: Optional[List[str]] = None) -> List[str]:
    """Every schema problem in a run directory ([] when fully valid).

    A torn *trailing* line in ``steps.jsonl`` — the signature a crashed
    writer leaves behind, and exactly what ``--resume`` repairs — is
    not an error: every completed record before it is still validated,
    and the tear is reported into ``warnings`` (when a list is given)
    so ``python -m repro.obs`` can surface it without failing the run.
    An undecodable line anywhere *else* is real corruption and stays an
    error.
    """
    run_dir = Path(run_dir)
    errors: List[str] = []
    if warnings is None:
        warnings = []

    manifest_path = run_dir / "manifest.json"
    if not manifest_path.is_file():
        errors.append("manifest.json missing")
    else:
        try:
            manifest = json.loads(manifest_path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"manifest.json unreadable: {exc}")
        else:
            errors.extend(validate_manifest(manifest))

    steps_path = run_dir / "steps.jsonl"
    if not steps_path.is_file():
        errors.append("steps.jsonl missing")
    else:
        lines = steps_path.read_text("utf-8").splitlines()
        while lines and not lines[-1].strip():
            lines.pop()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    warnings.append(
                        f"steps.jsonl:{lineno}: torn trailing line "
                        f"(crash artifact; repaired on --resume): "
                        f"{line[:60]!r}"
                    )
                else:
                    errors.append(f"steps.jsonl:{lineno}: not JSON ({exc})")
                continue
            errors.extend(f"steps.jsonl:{lineno}: {problem}"
                          for problem in validate_record(record))

    summary_path = run_dir / "summary.json"
    if not summary_path.is_file():
        errors.append("summary.json missing")
    else:
        try:
            summary = json.loads(summary_path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"summary.json unreadable: {exc}")
        else:
            errors.extend(validate_summary(summary))
    return errors
