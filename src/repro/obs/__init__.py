"""Run telemetry & observability (manifest / step stream / summary).

See DESIGN.md §8: every training run persists a provenance manifest,
a JSONL stream of per-step and validation records, and a final summary
with per-design metrics plus the merged phase-timing registry.
``repro.cli report-run`` renders a run directory; ``python -m
repro.obs RUNDIR`` validates one against the schema (used by CI).
"""

from .logger import (NullRunLogger, RunLogger, build_manifest,
                     default_run_dir, read_records, repair_jsonl_tail)
from .report import load_run, manifest_diff, render_loss_curve, render_run
from .schema import (
    RECORD_SCHEMAS,
    validate_bench_inference,
    validate_bench_serving,
    validate_manifest,
    validate_record,
    validate_run_dir,
    validate_summary,
)

__all__ = [
    "NullRunLogger",
    "RECORD_SCHEMAS",
    "RunLogger",
    "build_manifest",
    "default_run_dir",
    "load_run",
    "read_records",
    "repair_jsonl_tail",
    "manifest_diff",
    "render_loss_curve",
    "render_run",
    "validate_bench_inference",
    "validate_bench_serving",
    "validate_manifest",
    "validate_record",
    "validate_run_dir",
    "validate_summary",
]
