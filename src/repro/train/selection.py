"""Validation-based checkpoint selection on held-out target-node paths.

With only one target-node training design, the final iterate of any
training run is noisy: two seeds can converge to solutions whose
target-node generalization differs wildly.  The standard remedy is to
hold out a slice of the *training* data as validation and keep the best
checkpoint.  Here the holdout is a fraction of the 7nm training
endpoints — no test data is ever touched — and the same selector is
offered to every strategy (ours and the DAC23 baselines alike), keeping
the Table-2 comparison fair.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..flow import DesignData
from .metrics import r2_score


class HoldoutSelector:
    """Splits target-node endpoints into train/validation pools.

    Parameters
    ----------
    designs:
        All training designs; only target-node (7nm) ones are split.
    fraction:
        Fraction of each target design's endpoints held out.
    seed:
        Split seed (fixed per experiment so all strategies see the same
        validation set).
    """

    def __init__(self, designs: Sequence[DesignData],
                 fraction: float = 0.25, seed: int = 0,
                 target_node: str = "7nm") -> None:
        if not 0.0 < fraction < 1.0:
            raise ValueError("holdout fraction must be in (0, 1)")
        self.target_node = target_node
        rng = np.random.default_rng(seed)
        self._train_pool: Dict[str, np.ndarray] = {}
        self._val_pool: Dict[str, np.ndarray] = {}
        self.val_designs: List[DesignData] = []
        for design in designs:
            if design.node != target_node:
                continue
            k = design.num_endpoints
            n_val = max(1, int(fraction * k)) if k > 3 else 0
            perm = rng.permutation(k)
            self._val_pool[design.name] = np.sort(perm[:n_val])
            self._train_pool[design.name] = np.sort(perm[n_val:])
            if n_val:
                self.val_designs.append(design)

    # ------------------------------------------------------------------
    def training_pool(self, design: DesignData) -> Optional[np.ndarray]:
        """Endpoint indices a trainer may sample from (None = all)."""
        return self._train_pool.get(design.name)

    def validation_pool(self, design: DesignData) -> np.ndarray:
        return self._val_pool[design.name]

    def state_dict(self) -> Dict[str, np.ndarray]:
        """The held-out endpoint indices, keyed by design name.

        The split is deterministic in ``(designs, fraction, seed)``, so
        this is persisted into training checkpoints only as a
        *fingerprint*: on resume the rebuilt selector must produce the
        same pools, or the holdout/train separation (and with it resume
        determinism) has silently changed.
        """
        return {name: pool.copy()
                for name, pool in sorted(self._val_pool.items())}

    def verify_state(self, state: Mapping[str, np.ndarray]) -> None:
        """Raise ``ValueError`` unless ``state`` matches this selector."""
        mine = self.state_dict()
        if sorted(mine) != sorted(state):
            raise ValueError(
                f"holdout designs changed: checkpoint has "
                f"{sorted(state)}, current split has {sorted(mine)}"
            )
        for name, pool in mine.items():
            if not np.array_equal(pool, np.asarray(state[name])):
                raise ValueError(
                    f"holdout pool for design {name!r} does not match "
                    "the checkpoint (different dataset or seed?)"
                )

    def validate(self, predict: Callable[[DesignData, np.ndarray],
                                         np.ndarray]) -> float:
        """Mean held-out R^2 across target designs.

        ``predict(design, endpoint_subset)`` must return predictions for
        exactly those endpoints.
        """
        scores = []
        for design in self.val_designs:
            idx = self._val_pool[design.name]
            pred = predict(design, idx)
            scores.append(r2_score(design.labels[idx], pred))
        return float(np.mean(scores)) if scores else float("-inf")


class CheckpointKeeper:
    """Tracks the best-validation parameter snapshot of a module."""

    def __init__(self, module) -> None:
        self.module = module
        self.best_score = float("-inf")
        self.best_state: Optional[Dict[str, np.ndarray]] = None

    def offer(self, score: float) -> bool:
        """Record the current parameters if ``score`` is the best so far."""
        if score > self.best_score:
            self.best_score = score
            self.best_state = self.module.state_dict()
            return True
        return False

    def restore(self) -> None:
        """Load the best snapshot back into the module (if any)."""
        if self.best_state is not None:
            self.module.load_state_dict(self.best_state)

    def state_dict(self) -> Dict[str, Any]:
        """Persistable snapshot (best score + best parameter arrays)."""
        return {
            "best_score": float(self.best_score),
            "best_state": None if self.best_state is None else {
                name: value.copy()
                for name, value in self.best_state.items()
            },
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (crash-resume path)."""
        best_state = state["best_state"]
        self.best_score = float(state["best_score"])
        self.best_state = None if best_state is None else {
            name: np.asarray(value).copy()
            for name, value in best_state.items()
        }
