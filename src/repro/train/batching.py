"""Endpoint minibatching for per-design training steps."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..flow import DesignData


def sample_endpoints(design: DesignData, batch_size: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Sample endpoint indices of one design (without replacement).

    Returns all endpoints when the design has fewer than ``batch_size``.
    """
    n = design.num_endpoints
    if n <= batch_size:
        return np.arange(n)
    return rng.choice(n, size=batch_size, replace=False)


def sample_from_pool(pool: np.ndarray, batch_size: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Sample ``batch_size`` endpoint indices from an explicit pool."""
    if len(pool) <= batch_size:
        return np.asarray(pool)
    return rng.choice(pool, size=batch_size, replace=False)


def split_by_node(designs: Sequence[DesignData], target_node: str = "7nm"
                  ) -> Tuple[List[DesignData], List[DesignData]]:
    """Partition designs into (source, target) lists.

    Every design whose node is not ``target_node`` counts as source —
    with a K-node ladder that is the whole source chain.
    """
    source = [d for d in designs if d.node != target_node]
    target = [d for d in designs if d.node == target_node]
    return source, target
