"""Crash-safe training checkpoints: capture, persist, restore.

A training run is resumable bit-for-bit when five pieces of state
survive the crash: the model tensors (all of them, frozen ones
included), the optimiser's internal buffers (Adam moments + step
count), every RNG that training consumes (the batch-sampling generator
and the Bayesian readout's MC-noise generator), the selection state
(best held-out checkpoint / SWA accumulators), and the step index.
:func:`save_checkpoint` packs exactly that into one ``checkpoint.npz``
— numpy arrays plus a JSON ``meta`` entry, no pickled objects — and
writes it atomically (temp file + ``os.replace``, see
:func:`repro.nn.serialization.atomic_savez`), so a crash *during*
checkpointing leaves the previous checkpoint intact.

The archive layout::

    meta                 JSON: version, step, TrainConfig, RNG states,
                         optimizer scalars, history, SWA count, ...
    param::<name>        every tensor of the model tree
    opt::<buffer>::<i>   per-parameter optimiser buffers (m/v/velocity)
    keeper::<name>       best-validation snapshot (when selection is on)
    swa::<i>             SWA running sums (when SWA is on)
    holdout::<design>    held-out endpoint indices (resume fingerprint)

``repro train --resume RUNDIR`` and
:meth:`repro.train.OursTrainer.load_checkpoint` consume this module;
see DESIGN.md §10 for the resume semantics.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..nn.serialization import CheckpointError, atomic_savez

__all__ = ["CHECKPOINT_NAME", "CHECKPOINT_VERSION", "CheckpointError",
           "TrainingCheckpoint", "capture_rng", "load_checkpoint",
           "restore_rng", "save_checkpoint"]

#: Default checkpoint filename inside a run directory.
CHECKPOINT_NAME = "checkpoint.npz"

CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# RNG state capture
# ----------------------------------------------------------------------
def capture_rng(rng: np.random.Generator) -> Dict[str, Any]:
    """The generator's bit-generator state as a JSON-able dict.

    Numpy exposes the full internal state (for PCG64: two 128-bit
    integers) as plain Python ints, so the round trip through JSON is
    exact and the restored generator continues the *same* stream.
    """
    return rng.bit_generator.state


def restore_rng(rng: np.random.Generator,
                state: Mapping[str, Any]) -> None:
    """Load a :func:`capture_rng` state back into ``rng`` in place."""
    rng.bit_generator.state = dict(state)


# ----------------------------------------------------------------------
# Checkpoint payload
# ----------------------------------------------------------------------
@dataclass
class TrainingCheckpoint:
    """Everything :func:`load_checkpoint` recovers from the archive."""

    step: int
    config: Dict[str, Any]
    params: Dict[str, np.ndarray]
    optimizer: Dict[str, Any]
    rng_states: Dict[str, Any]
    keeper: Optional[Dict[str, Any]] = None
    holdout: Optional[Dict[str, np.ndarray]] = None
    swa_sum: Optional[List[np.ndarray]] = None
    swa_count: int = 0
    history: List[Dict[str, Any]] = field(default_factory=list)
    #: Informational execution metadata (e.g. the worker count of a
    #: data-parallel run).  Never binding: the math is identical for
    #: any worker count, so a resume may use a different one.
    extra: Dict[str, Any] = field(default_factory=dict)


def _flatten_optimizer(state: Mapping[str, Any],
                       arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Split an optimiser state dict into JSON scalars + npz arrays."""
    meta: Dict[str, Any] = {"scalars": {}, "lists": {}}
    for key, value in state.items():
        if isinstance(value, list):
            present = [i for i, buf in enumerate(value) if buf is not None]
            meta["lists"][key] = {"len": len(value), "present": present}
            for i in present:
                arrays[f"opt::{key}::{i}"] = value[i]
        else:
            meta["scalars"][key] = value
    return meta


def _inflate_optimizer(meta: Mapping[str, Any],
                       arrays: Mapping[str, np.ndarray],
                       path: Path) -> Dict[str, Any]:
    """Rebuild the optimiser state dict from meta + archive arrays."""
    state: Dict[str, Any] = dict(meta["scalars"])
    for key, spec in meta["lists"].items():
        buffers: List[Optional[np.ndarray]] = [None] * int(spec["len"])
        for i in spec["present"]:
            entry = f"opt::{key}::{i}"
            if entry not in arrays:
                raise CheckpointError(
                    f"checkpoint {path} missing key {entry!r}")
            buffers[int(i)] = arrays[entry]
        state[key] = buffers
    return state


def save_checkpoint(path: Union[str, Path], *, step: int,
                    config: Mapping[str, Any],
                    model: Any, optimizer: Any,
                    trainer_rng: np.random.Generator,
                    noise_rng: np.random.Generator,
                    keeper: Any = None, selector: Any = None,
                    swa_sum: Optional[Sequence[np.ndarray]] = None,
                    swa_count: int = 0,
                    history: Sequence[Mapping[str, Any]] = (),
                    extra: Optional[Mapping[str, Any]] = None) -> Path:
    """Atomically persist a mid-run training snapshot to ``path``.

    ``step`` counts *completed* optimisation steps; a resumed run
    continues at exactly that index.  ``model`` contributes every
    tensor in its module tree (via ``named_tensors``); ``optimizer``,
    ``keeper`` and ``selector`` contribute their ``state_dict()``.
    """
    # Function-scope import: repro.infer imports repro.train.fused, so
    # a module-level import here would tie the two package inits into a
    # knot for no benefit.
    from ..infer.cache import named_tensors

    arrays: Dict[str, np.ndarray] = {}
    opt_meta = _flatten_optimizer(optimizer.state_dict(), arrays)

    keeper_meta: Optional[Dict[str, Any]] = None
    if keeper is not None:
        keeper_state = keeper.state_dict()
        keeper_meta = {"best_score": keeper_state["best_score"],
                       "has_state": keeper_state["best_state"] is not None}
        if keeper_state["best_state"] is not None:
            for name, value in keeper_state["best_state"].items():
                arrays[f"keeper::{name}"] = value

    holdout_names: List[str] = []
    if selector is not None:
        for name, pool in selector.state_dict().items():
            holdout_names.append(name)
            arrays[f"holdout::{name}"] = pool

    if swa_sum is not None:
        for i, acc in enumerate(swa_sum):
            arrays[f"swa::{i}"] = acc

    for name, tensor in named_tensors(model):
        arrays[f"param::{name}"] = tensor.data

    meta = {
        "format_version": CHECKPOINT_VERSION,
        "step": int(step),
        "config": dict(config),
        "optimizer": opt_meta,
        "rng_states": {"train": capture_rng(trainer_rng),
                       "noise": capture_rng(noise_rng)},
        "keeper": keeper_meta,
        "holdout_designs": holdout_names,
        "swa_count": int(swa_count),
        "swa_len": 0 if swa_sum is None else len(swa_sum),
        "history": [dict(record) for record in history],
        "extra": {} if extra is None else dict(extra),
    }
    arrays["meta"] = np.array(json.dumps(meta))
    return atomic_savez(path, arrays)


def load_checkpoint(path: Union[str, Path]) -> TrainingCheckpoint:
    """Read a :func:`save_checkpoint` archive back into memory.

    Everything is staged out of the archive before any object is
    built, so a truncated or incomplete checkpoint raises one typed
    :class:`CheckpointError` naming the offending key — it can never
    half-populate a trainer.
    """
    path = Path(path)
    try:
        with np.load(str(path), allow_pickle=False) as archive:
            staged = {key: archive[key] for key in archive.files}
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"unreadable training checkpoint {path}: {exc}") from exc

    if "meta" not in staged:
        raise CheckpointError(f"checkpoint {path} missing key 'meta'")
    try:
        meta = json.loads(str(staged["meta"]))
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} has corrupt 'meta' JSON: {exc}") from exc
    version = meta.get("format_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} in {path} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )

    params = {key[len("param::"):]: value
              for key, value in staged.items()
              if key.startswith("param::")}
    optimizer = _inflate_optimizer(meta["optimizer"], staged, path)

    keeper: Optional[Dict[str, Any]] = None
    if meta.get("keeper") is not None:
        best_state = None
        if meta["keeper"]["has_state"]:
            best_state = {key[len("keeper::"):]: value
                          for key, value in staged.items()
                          if key.startswith("keeper::")}
            if not best_state:
                raise CheckpointError(
                    f"checkpoint {path} missing key 'keeper::*' "
                    "(keeper snapshot recorded but absent)")
        keeper = {"best_score": meta["keeper"]["best_score"],
                  "best_state": best_state}

    holdout: Optional[Dict[str, np.ndarray]] = None
    if meta.get("holdout_designs"):
        holdout = {}
        for name in meta["holdout_designs"]:
            entry = f"holdout::{name}"
            if entry not in staged:
                raise CheckpointError(
                    f"checkpoint {path} missing key {entry!r}")
            holdout[name] = staged[entry]

    swa_sum: Optional[List[np.ndarray]] = None
    if meta.get("swa_len"):
        swa_sum = []
        for i in range(int(meta["swa_len"])):
            entry = f"swa::{i}"
            if entry not in staged:
                raise CheckpointError(
                    f"checkpoint {path} missing key {entry!r}")
            swa_sum.append(staged[entry])

    return TrainingCheckpoint(
        step=int(meta["step"]),
        config=dict(meta["config"]),
        params=params,
        optimizer=optimizer,
        rng_states=dict(meta["rng_states"]),
        keeper=keeper,
        holdout=holdout,
        swa_sum=swa_sum,
        swa_count=int(meta.get("swa_count", 0)),
        history=list(meta.get("history", [])),
        extra=dict(meta.get("extra") or {}),
    )
