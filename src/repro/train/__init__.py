"""Training loops, baseline strategies, and metrics."""

from .batching import sample_endpoints, split_by_node
from .checkpoint import (
    CHECKPOINT_NAME,
    CheckpointError,
    TrainingCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from .fused import (FusedDesignBatch, merge_pin_graphs, partition_counts,
                    slice_ranges)
from .metrics import evaluate_per_design, mae, r2_score, rmse
from .parallel import ParallelTrainer, WorkerError, resolve_worker_count
from .strategies import (
    BASELINE_STRATEGIES,
    measure_inference_runtime,
    predict_head_for_node,
    train_adv_only,
    train_param_share,
    train_pt_ft,
    train_simple_merge,
)
from .trainer import OursTrainer, TrainConfig, train_ours

__all__ = [
    "BASELINE_STRATEGIES",
    "CHECKPOINT_NAME",
    "CheckpointError",
    "FusedDesignBatch",
    "OursTrainer",
    "ParallelTrainer",
    "TrainConfig",
    "TrainingCheckpoint",
    "WorkerError",
    "load_checkpoint",
    "save_checkpoint",
    "evaluate_per_design",
    "merge_pin_graphs",
    "partition_counts",
    "resolve_worker_count",
    "slice_ranges",
    "mae",
    "measure_inference_runtime",
    "predict_head_for_node",
    "r2_score",
    "rmse",
    "sample_endpoints",
    "split_by_node",
    "train_adv_only",
    "train_ours",
    "train_param_share",
    "train_pt_ft",
    "train_simple_merge",
]
