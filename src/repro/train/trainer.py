"""Training loop for the paper's full model (Equation 12).

Each step samples a batch of paths from every training design, computes

``L = sum ELBO-terms + gamma1 * L_CLR + gamma2 * L_CMD``

and takes an Adam step.  The ELBO priors are rebuilt every step from the
current batch's disentangled features (the amortisation trick of
Equation 10), so no persistent node statistics are needed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..flow import DesignData
from ..model import TimingPredictor, cmd_loss, node_contrastive_loss
from ..model.gnn import reference_sweep
from ..nn import Adam, Tensor, concatenate
from ..obs import NullRunLogger, RunLogger
from ..util import timed
from .batching import sample_endpoints, sample_from_pool, split_by_node
from .fused import FusedDesignBatch, slice_ranges
from .selection import CheckpointKeeper, HoldoutSelector


@dataclass
class TrainConfig:
    """Hyper-parameters of the training loop.

    ``gamma1``/``gamma2`` default to the paper's 10/100.  ``steps`` plays
    the role of the paper's epochs (each step touches every design once);
    defaults are sized for the scaled-down reproduction.
    """

    steps: int = 150
    lr: float = 2e-3
    batch_endpoints: int = 48
    gamma1: float = 1.0
    gamma2: float = 30.0
    kl_weight: float = 1.0
    prior_weight: float = 1.0
    temperature: float = 0.5
    cmd_order: int = 5
    grad_clip: float = 5.0
    warmup_fraction: float = 0.3
    lr_decay: float = 0.1
    #: Fraction of the run at which stochastic weight averaging starts;
    #: ``1.0`` (the default) disables SWA.  SWA and held-out checkpoint
    #: selection both decide the final weights, so enabling SWA requires
    #: ``holdout_fraction`` outside (0, 1) — the trainer rejects the
    #: ambiguous combination (see :meth:`OursTrainer.fit`).
    swa_fraction: float = 1.0
    holdout_fraction: float = 0.25
    eval_every: int = 15
    seed: int = 0
    #: Fused batched step (one GNN sweep + one CNN forward for all
    #: designs) vs. the legacy per-design loop.  Numerically equivalent;
    #: the loop is kept as the reference/benchmark baseline.
    fused: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.swa_fraction <= 1.0:
            raise ValueError(
                f"swa_fraction must be in (0, 1] (1.0 disables SWA), "
                f"got {self.swa_fraction}"
            )


class OursTrainer:
    """Trains a :class:`TimingPredictor` on mixed-node data.

    Parameters
    ----------
    model:
        The predictor to optimise (modified in place).
    designs:
        Training designs from both nodes; the split is derived from each
        design's ``node`` attribute.
    config:
        Loop hyper-parameters.
    logger:
        Optional :class:`~repro.obs.RunLogger`; every step, validation
        event and the final-weights decision are streamed to it.  The
        default records nothing.
    """

    def __init__(self, model: TimingPredictor,
                 designs: Sequence[DesignData],
                 config: Optional[TrainConfig] = None,
                 logger: Optional[RunLogger] = None) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.logger = logger if logger is not None else NullRunLogger()
        self.source, self.target = split_by_node(designs)
        if not self.source or not self.target:
            raise ValueError(
                "ours needs designs from both nodes "
                f"(got {len(self.source)} source, {len(self.target)} target)"
            )
        self.rng = np.random.default_rng(self.config.seed)
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)
        self.history: List[Dict[str, float]] = []
        #: Which weights ``fit`` left in the model: ``"final-iterate"``,
        #: ``"best-checkpoint"`` or ``"swa"`` (set at the end of fit).
        self.final_weights_source: Optional[str] = None
        # Validation-based checkpoint selection on held-out 7nm paths.
        self.selector: Optional[HoldoutSelector] = None
        if 0.0 < self.config.holdout_fraction < 1.0:
            self.selector = HoldoutSelector(
                designs, fraction=self.config.holdout_fraction,
                seed=self.config.seed,
            )
        if self.selector is not None and self.config.swa_fraction < 1.0:
            # Both mechanisms overwrite the final weights; restoring a
            # checkpoint over the SWA average (the historical behaviour)
            # silently discarded the average.  Make the choice explicit.
            raise ValueError(
                "swa_fraction < 1.0 and checkpoint selection are mutually "
                "exclusive: SWA averages the tail iterates while the "
                "selector restores the best validation checkpoint. "
                "Set holdout_fraction=0.0 to train with SWA, or keep "
                "swa_fraction=1.0 to use checkpoint selection."
            )
        # Per-node observation variance for the ELBO likelihood: the
        # variance of the node's training labels.  This conditions the
        # likelihood's scale on the node population N, so the 130nm
        # node's absolutely-larger errors cannot drown the 7nm signal.
        self.node_obs_var: Dict[str, float] = {}
        for node, group in (("130nm", self.source), ("7nm", self.target)):
            labels = np.concatenate([d.labels for d in group])
            self.node_obs_var[node] = float(max(labels.var(), 1e-6))
        # Fused batching state: the disjoint-union graph is static
        # across steps (only endpoint subsets change), so it is built
        # once, lazily, and its GNN level plan is memoised on it.
        self._fused_batch: Optional[FusedDesignBatch] = None

    # ------------------------------------------------------------------
    def _sample_subsets(self) -> List[np.ndarray]:
        """Per-design endpoint subsets, in source-then-target order.

        The RNG consumption order is identical between the fused and
        looped paths, which is what keeps them step-for-step comparable.
        """
        cfg = self.config
        subsets = []
        for design in self.source + self.target:
            pool = self.selector.training_pool(design) \
                if self.selector else None
            if pool is not None:
                subsets.append(sample_from_pool(pool, cfg.batch_endpoints,
                                                self.rng))
            else:
                subsets.append(sample_endpoints(design, cfg.batch_endpoints,
                                                self.rng))
        return subsets

    def _features_fused(self, subsets: List[np.ndarray]
                        ) -> Tuple[Tensor, Tensor, Tensor]:
        """One sweep / one CNN pass for every design's sampled paths."""
        if self._fused_batch is None:
            self._fused_batch = FusedDesignBatch(self.source + self.target)
        return self._fused_batch.path_features(self.model, subsets)

    def _features_looped(self, subsets: List[np.ndarray]
                         ) -> Tuple[Tensor, Tensor, Tensor]:
        """Legacy per-design extraction (the pre-fusion implementation).

        Runs the reference per-level autograd sweep so benchmarks
        measure the seed implementation; values are identical to the
        fused path either way.
        """
        parts_u, parts_un, parts_ud = [], [], []
        with reference_sweep():
            for design, subset in zip(self.source + self.target, subsets):
                u, u_n, u_d = self.model.path_features(design, subset)
                parts_u.append(u)
                parts_un.append(u_n)
                parts_ud.append(u_d)
        return (concatenate(parts_u, axis=0),
                concatenate(parts_un, axis=0),
                concatenate(parts_ud, axis=0))

    def step(self, warmup: bool = False) -> Dict[str, float]:
        """One optimisation step over all designs; returns loss parts.

        During warmup the alignment losses and the KL term are disabled,
        so the extractor first learns plain cross-node regression (the
        same signal PT-FT's pretraining provides) before the
        disentangle/align/Bayesian machinery shapes the feature space.

        With ``config.fused`` (the default) all designs share one GNN
        sweep over the disjoint-union graph and one stacked CNN forward;
        per-design blocks are recovered as contiguous row ranges.  The
        looped path recomputes them design by design — same numbers,
        ~#designs more autograd nodes.
        """
        start = time.perf_counter()
        cfg = self.config
        gamma1 = 0.0 if warmup else cfg.gamma1
        gamma2 = 0.0 if warmup else cfg.gamma2
        kl_weight = 0.0 if warmup else cfg.kl_weight
        designs = self.source + self.target
        subsets = self._sample_subsets()
        with timed("train.features"):
            if cfg.fused:
                u, u_n, u_d = self._features_fused(subsets)
            else:
                u, u_n, u_d = self._features_looped(subsets)
        z = self.model.disentangler.recombine(u_n, u_d)
        ranges = slice_ranges([len(s) for s in subsets])
        # Designs are ordered source-then-target, so each node's block
        # is one contiguous row range of the batched features.
        n_source = ranges[len(self.source) - 1][1]
        un_s, un_t = u_n[:n_source], u_n[n_source:]

        prior_s = self.model.prior_for(un_s, u_d)
        prior_t = self.model.prior_for(un_t, u_d)

        elbo_total = None
        with timed("train.elbo"):
            for design, subset, (lo, hi) in zip(designs, subsets, ranges):
                prior_mu, prior_lv = prior_s if design.node == "130nm" \
                    else prior_t
                term = self.model.readout.elbo_loss(
                    u[lo:hi], z[lo:hi], design.labels[subset],
                    prior_mu, prior_lv, kl_weight=kl_weight,
                    obs_var=self.node_obs_var[design.node],
                    prior_weight=cfg.prior_weight,
                )
                elbo_total = term if elbo_total is None \
                    else elbo_total + term

        with timed("train.align"):
            clr = node_contrastive_loss(un_s, un_t,
                                        temperature=cfg.temperature)
            cmd = cmd_loss(u_d[:n_source], u_d[n_source:],
                           max_order=cfg.cmd_order)
        total = elbo_total + gamma1 * clr + gamma2 * cmd

        with timed("train.backward"):
            self.optimizer.zero_grad()
            total.backward()
            grad_norm = self.optimizer.clip_grad_norm(cfg.grad_clip)
            self.optimizer.step()
        return {
            "total": total.item(),
            "elbo": elbo_total.item(),
            "contrastive": clr.item(),
            "cmd": cmd.item(),
            "lr": float(self.optimizer.lr),
            "grad_norm": float(grad_norm),
            "grad_norm_clipped": float(min(grad_norm, cfg.grad_clip)),
            "warmup": bool(warmup),
            "step_seconds": time.perf_counter() - start,
        }

    def fit(self, steps: Optional[int] = None) -> List[Dict[str, float]]:
        """Run the full loop; returns per-step loss history.

        The final weights come from exactly one source, recorded in
        ``final_weights_source`` and logged as a ``final_weights``
        telemetry event:

        - ``"swa"`` — tail-averaged iterates, when ``swa_fraction < 1``
          (checkpoint selection is rejected at construction in that
          case, so the average can never be silently overwritten);
        - ``"best-checkpoint"`` — the best held-out validation
          snapshot, when selection is enabled and a snapshot was kept;
        - ``"final-iterate"`` — otherwise.

        After the last step the node-level priors p(W | N) are finalised
        on the training designs, which is what inference uses (Eq. 7).
        """
        steps = steps or self.config.steps
        warmup_steps = int(self.config.warmup_fraction * steps)
        swa_start = int(self.config.swa_fraction * steps)
        base_lr = self.config.lr
        params = self.model.parameters()
        keeper = CheckpointKeeper(self.model) if self.selector else None
        swa_sum = None
        swa_count = 0
        step_offset = len(self.history)
        for t in range(steps):
            # Linear learning-rate decay stabilises the final priors.
            decay = self.config.lr_decay
            self.optimizer.lr = base_lr * (1.0 - (1.0 - decay) * t / steps)
            record = self.step(warmup=t < warmup_steps)
            self.history.append(record)
            self.logger.log_step(step_offset + t, record)
            if t >= swa_start:
                # Stochastic weight averaging over the tail of training:
                # the averaged iterate is far less sensitive to the noise
                # of the last few minibatches than the final iterate.
                if swa_sum is None:
                    swa_sum = [p.data.copy() for p in params]
                else:
                    for acc, p in zip(swa_sum, params):
                        acc += p.data
                swa_count += 1
            last = t == steps - 1
            if keeper is not None and t >= warmup_steps \
                    and (t % self.config.eval_every == 0 or last):
                self._validate_and_keep(keeper, step_offset + t)
        self.optimizer.lr = base_lr
        if swa_count > 1:
            for acc, p in zip(swa_sum, params):
                # repro-check: disable=tensor-data-mutation -- SWA writes averaged leaf weights between steps
                p.data[...] = acc / swa_count
            self.final_weights_source = "swa"
        elif keeper is not None and keeper.best_state is not None:
            keeper.restore()
            self.final_weights_source = "best-checkpoint"
        else:
            self.final_weights_source = "final-iterate"
        self.logger.log_event("final_weights",
                              source=self.final_weights_source)
        self.model.finalize_node_priors(self.source + self.target,
                                        seed=self.config.seed)
        return self.history

    def _validate_and_keep(self, keeper: CheckpointKeeper,
                           step: int) -> None:
        """Score the current model on held-out 7nm paths; keep if best."""
        self.model.finalize_node_priors(self.source + self.target,
                                        seed=self.config.seed)
        score = self.selector.validate(
            lambda design, idx: self.model.predict(design, idx)
        )
        best = keeper.offer(score)
        self.logger.log_validation(step, score, best)


def train_ours(designs: Sequence[DesignData], in_features: int,
               config: Optional[TrainConfig] = None,
               model_seed: int = 0,
               use_disentangle_align: bool = True,
               use_bayesian: bool = True,
               logger: Optional[RunLogger] = None) -> TimingPredictor:
    """Build and train the paper's model.

    The two ``use_*`` flags implement the Figure 8 ablations: turning off
    ``use_disentangle_align`` zeroes gamma1/gamma2 (no alignment losses),
    turning off ``use_bayesian`` fixes the readout's variance to (near)
    zero and drops the KL term, reducing it to a deterministic
    input-conditioned linear layer.
    """
    config = config or TrainConfig()
    if not use_disentangle_align:
        config = TrainConfig(**{**config.__dict__,
                                "gamma1": 0.0, "gamma2": 0.0})
    if not use_bayesian:
        config = TrainConfig(**{**config.__dict__, "kl_weight": 0.0})
    model = TimingPredictor(in_features, seed=model_seed)
    if not use_bayesian:
        _freeze_variance(model)
    OursTrainer(model, designs, config, logger=logger).fit()
    return model


def _freeze_variance(model: TimingPredictor) -> None:
    """Pin the readout's weight variance near zero (Bayesian-off ablation)."""
    for param in model.readout.logvar_net.parameters():
        # repro-check: disable=tensor-data-mutation -- ablation pins frozen leaves before training starts
        param.data[...] = 0.0
        param.requires_grad = False
    # Bias the final layer output to a very small log-variance.
    last = model.readout.logvar_net.net.modules[-1]
    # repro-check: disable=tensor-data-mutation -- ablation pins a frozen leaf before training starts
    last.bias.data[...] = -9.0
