"""Training loop for the paper's full model (Equation 12).

Each step samples a batch of paths from every training design, computes

``L = sum ELBO-terms + gamma1 * L_CLR + gamma2 * L_CMD``

and takes an Adam step.  The ELBO priors are rebuilt every step from the
current batch's disentangled features (the amortisation trick of
Equation 10), so no persistent node statistics are needed.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..flow import DesignData
from ..model import (TimingPredictor, cmd_loss_multi,
                     node_contrastive_loss_multi)
from ..model.gnn import reference_sweep
from ..nn import (Adam, CheckpointError, CompiledStep, CompileError,
                  ReplayMismatch, Tensor, concatenate, step_index,
                  step_input, trace)
from ..obs import NullRunLogger, RunLogger
from ..util import timed
from .batching import sample_endpoints, sample_from_pool
from .checkpoint import (CHECKPOINT_NAME, TrainingCheckpoint, restore_rng,
                         save_checkpoint)
from .checkpoint import load_checkpoint as read_checkpoint
from .fused import FusedDesignBatch, slice_ranges
from .selection import CheckpointKeeper, HoldoutSelector


@dataclass
class TrainConfig:
    """Hyper-parameters of the training loop.

    ``gamma1``/``gamma2`` default to the paper's 10/100.  ``steps`` plays
    the role of the paper's epochs (each step touches every design once);
    defaults are sized for the scaled-down reproduction.
    """

    steps: int = 150
    lr: float = 2e-3
    batch_endpoints: int = 48
    gamma1: float = 1.0
    gamma2: float = 30.0
    kl_weight: float = 1.0
    prior_weight: float = 1.0
    temperature: float = 0.5
    cmd_order: int = 5
    grad_clip: float = 5.0
    warmup_fraction: float = 0.3
    lr_decay: float = 0.1
    #: Fraction of the run at which stochastic weight averaging starts;
    #: ``1.0`` (the default) disables SWA.  SWA and held-out checkpoint
    #: selection both decide the final weights, so enabling SWA requires
    #: ``holdout_fraction`` outside (0, 1) — the trainer rejects the
    #: ambiguous combination (see :meth:`OursTrainer.fit`).
    swa_fraction: float = 1.0
    holdout_fraction: float = 0.25
    eval_every: int = 15
    seed: int = 0
    #: Fused batched step (one GNN sweep + one CNN forward for all
    #: designs) vs. the legacy per-design loop.  Numerically equivalent;
    #: the loop is kept as the reference/benchmark baseline.
    fused: bool = True
    #: Write a crash-resume checkpoint every N completed steps
    #: (``0`` disables periodic checkpoints; a graceful-stop checkpoint
    #: is still written when a stop is requested mid-run).
    checkpoint_every: int = 0
    #: Graph-compile the fused training step: trace the op graph once,
    #: then replay it as a flat schedule of preallocated numpy kernels
    #: (see :mod:`repro.nn.compile`).  Bit-for-bit identical to eager
    #: execution in float64, so eager and compiled runs (and their
    #: checkpoints) are interchangeable.  Shape changes retrace
    #: automatically; compile errors fall back to eager.  Only applies
    #: to the fused step (``fused=True``).
    compile: bool = True
    #: Numeric precision of the *compiled* step: ``"float64"`` (default,
    #: bit-exact vs eager) or ``"float32"`` (faster, ~1e-5 relative
    #: loss deviation; see DESIGN.md §11).  Eager execution is always
    #: float64, so float32 requires the compiled fused step.
    dtype: str = "float64"
    #: Ordered node labels of the training chain, sources first (e.g.
    #: ``["130nm", "45nm", "7nm"]``).  ``None`` (the default) derives
    #: the order from the designs — every non-target node in first-seen
    #: order, then the target — which reproduces the historical
    #: two-node behaviour exactly.  Stored as a list so the checkpoint
    #: config diff survives its JSON round trip.
    nodes: Optional[List[str]] = None
    #: The transfer target's node label; all other nodes are sources.
    target_node: str = "7nm"
    #: How the CMD couples K > 2 nodes: ``"vs-target"`` (each source
    #: vs the target; the paper's pair for K=2) or ``"pairwise"``
    #: (every node pair).  Identical for K=2 either way.
    cmd_mode: str = "vs-target"

    def __post_init__(self) -> None:
        if not 0.0 < self.swa_fraction <= 1.0:
            raise ValueError(
                f"swa_fraction must be in (0, 1] (1.0 disables SWA), "
                f"got {self.swa_fraction}"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.dtype not in ("float64", "float32"):
            raise ValueError(
                f"dtype must be 'float64' or 'float32', got {self.dtype!r}"
            )
        if self.dtype == "float32" and not (self.compile and self.fused):
            raise ValueError(
                "dtype='float32' runs only in the compiled fused step; "
                "set compile=True and fused=True (or use float64)"
            )
        if self.cmd_mode not in ("vs-target", "pairwise"):
            raise ValueError(
                f"cmd_mode must be 'vs-target' or 'pairwise', "
                f"got {self.cmd_mode!r}"
            )
        if self.nodes is not None:
            self.nodes = list(self.nodes)
            if len(self.nodes) < 2:
                raise ValueError(
                    f"nodes needs at least a source and a target, "
                    f"got {self.nodes}"
                )
            if len(set(self.nodes)) != len(self.nodes):
                raise ValueError(f"duplicate node labels in {self.nodes}")
            if self.target_node not in self.nodes:
                raise ValueError(
                    f"target_node {self.target_node!r} is not in "
                    f"nodes {self.nodes}"
                )


class OursTrainer:
    """Trains a :class:`TimingPredictor` on mixed-node data.

    Parameters
    ----------
    model:
        The predictor to optimise (modified in place).
    designs:
        Training designs from both nodes; the split is derived from each
        design's ``node`` attribute.
    config:
        Loop hyper-parameters.
    logger:
        Optional :class:`~repro.obs.RunLogger`; every step, validation
        event and the final-weights decision are streamed to it.  The
        default records nothing.
    checkpoint_path:
        Where :meth:`save_checkpoint` writes; defaults to
        ``<logger.run_dir>/checkpoint.npz`` when the logger has a run
        directory, else checkpointing is unavailable until a path is
        given.
    """

    def __init__(self, model: TimingPredictor,
                 designs: Sequence[DesignData],
                 config: Optional[TrainConfig] = None,
                 logger: Optional[RunLogger] = None,
                 checkpoint_path: Union[str, Path, None] = None) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.logger = logger if logger is not None else NullRunLogger()
        self._checkpoint_path = checkpoint_path
        # K-node grouping: designs are ordered node by node — source
        # nodes in chain order, the target node last — and each node's
        # designs keep their input order.  With the default two-node
        # config this reduces exactly to the historical
        # source-then-target split.
        cfg = self.config
        self.target_node = cfg.target_node
        seen: List[str] = []
        for design in designs:
            if design.node not in seen:
                seen.append(design.node)
        if cfg.nodes is not None:
            unknown = sorted(set(seen) - set(cfg.nodes))
            if unknown:
                raise ValueError(
                    f"designs from nodes {unknown} are not in "
                    f"config.nodes {cfg.nodes}"
                )
            order = [n for n in cfg.nodes if n != self.target_node] \
                + [self.target_node]
        else:
            order = [n for n in seen if n != self.target_node] \
                + [self.target_node]
        groups = {node: [d for d in designs if d.node == node]
                  for node in order}
        # Shard-local trainers (repro.train.worker) may see only a
        # subset of the chain's nodes; empty groups are dropped so the
        # per-node blocks stay well-formed.
        self.node_order: List[str] = [n for n in order if groups[n]]
        self.node_groups: Dict[str, List[DesignData]] = {
            n: groups[n] for n in self.node_order}
        self.source = [d for n in self.node_order
                       if n != self.target_node
                       for d in self.node_groups[n]]
        self.target = groups.get(self.target_node, [])
        if not self.source or not self.target:
            raise ValueError(
                "ours needs designs from both nodes "
                f"(got {len(self.source)} source, {len(self.target)} target)"
            )
        self.rng = np.random.default_rng(self.config.seed)
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)
        self.history: List[Dict[str, float]] = []
        #: Which weights ``fit`` left in the model: ``"final-iterate"``,
        #: ``"best-checkpoint"`` or ``"swa"`` (set at the end of fit).
        self.final_weights_source: Optional[str] = None
        # Validation-based checkpoint selection on held-out 7nm paths.
        self.selector: Optional[HoldoutSelector] = None
        if 0.0 < self.config.holdout_fraction < 1.0:
            self.selector = HoldoutSelector(
                designs, fraction=self.config.holdout_fraction,
                seed=self.config.seed, target_node=self.target_node,
            )
        if self.selector is not None and self.config.swa_fraction < 1.0:
            # Both mechanisms overwrite the final weights; restoring a
            # checkpoint over the SWA average (the historical behaviour)
            # silently discarded the average.  Make the choice explicit.
            raise ValueError(
                "swa_fraction < 1.0 and checkpoint selection are mutually "
                "exclusive: SWA averages the tail iterates while the "
                "selector restores the best validation checkpoint. "
                "Set holdout_fraction=0.0 to train with SWA, or keep "
                "swa_fraction=1.0 to use checkpoint selection."
            )
        # Per-node observation variance for the ELBO likelihood: the
        # variance of the node's training labels.  This conditions the
        # likelihood's scale on the node population N, so the 130nm
        # node's absolutely-larger errors cannot drown the 7nm signal.
        self.node_obs_var: Dict[str, float] = {}
        for node in self.node_order:
            labels = np.concatenate([d.labels
                                     for d in self.node_groups[node]])
            self.node_obs_var[node] = float(max(labels.var(), 1e-6))
        # Fused batching state: the disjoint-union graph is static
        # across steps (only endpoint subsets change), so it is built
        # once, lazily, and its GNN level plan is memoised on it.
        self._fused_batch: Optional[FusedDesignBatch] = None
        # Compiled-step state: one CompiledStep per program signature
        # (warmup flag, per-design subset sizes, dtype) — a shape change
        # simply compiles a new program.  ``_compile_disabled`` latches
        # on an unrecoverable CompileError (e.g. an untraceable op) and
        # drops the run to eager; ``retraces`` counts replays invalidated
        # by rebound parameter arrays, capped per signature.
        self._programs: Dict[Tuple, CompiledStep] = {}
        self._retrace_counts: Dict[Tuple, int] = {}
        self._max_retraces = 3
        self._compile_disabled = False
        self.retraces = 0
        #: When True, replays time every kernel into the
        #: :mod:`repro.util` timing registry (``op.fwd.*``/``op.bwd.*``)
        #: and the program's ``op_profile`` (CLI ``--profile``).
        self.profile_ops = False
        # Crash-resume lifecycle state.  ``keeper`` lives on the
        # instance (not as a fit() local) so a checkpoint can capture
        # and restore the best-validation snapshot; the SWA accumulators
        # move here for the same reason.  ``_start_step`` is the absolute
        # step fit() resumes from (0 = fresh run / next sequential fit),
        # and ``interrupted`` reports whether the last fit() ended on a
        # requested stop instead of running to completion.
        self.keeper: Optional[CheckpointKeeper] = \
            CheckpointKeeper(self.model) if self.selector else None
        self._swa_sum: Optional[List[np.ndarray]] = None
        self._swa_count = 0
        self._start_step = 0
        self._stop_requested = False
        self.interrupted = False

    # -- crash-safe lifecycle ------------------------------------------
    def request_stop(self) -> None:
        """Ask fit() to stop gracefully at the next step boundary.

        Safe to call from a signal handler: it only flips a flag.  The
        in-flight step completes, a final checkpoint is written (when a
        checkpoint path is available), ``interrupted`` is set, and
        ``fit`` returns without the final-weights selection — the run
        is meant to be resumed, not served.
        """
        self._stop_requested = True

    def checkpoint_path(self) -> Optional[Path]:
        """Where checkpoints go: explicit path, else the logger's run dir."""
        if self._checkpoint_path is not None:
            return Path(self._checkpoint_path)
        run_dir = getattr(self.logger, "run_dir", None)
        return Path(run_dir) / CHECKPOINT_NAME if run_dir else None

    def save_checkpoint(self, step: Optional[int] = None,
                        path: Union[str, Path, None] = None) -> Path:
        """Atomically write a resumable snapshot of the run.

        ``step`` is the number of completed steps (defaults to the
        history length, which is correct for single-``fit`` runs).
        """
        target = Path(path) if path is not None else self.checkpoint_path()
        if target is None:
            raise ValueError(
                "no checkpoint path: pass one, construct the trainer "
                "with checkpoint_path=, or use a RunLogger with a run "
                "directory"
            )
        return save_checkpoint(
            target,
            step=len(self.history) if step is None else int(step),
            config=asdict(self.config),
            model=self.model,
            optimizer=self.optimizer,
            trainer_rng=self.rng,
            noise_rng=self.model.readout._noise_rng,
            keeper=self.keeper,
            selector=self.selector,
            swa_sum=self._swa_sum,
            swa_count=self._swa_count,
            history=self.history,
            extra=self._checkpoint_extra(),
        )

    def _checkpoint_extra(self) -> Dict[str, object]:
        """Informational metadata for the checkpoint (never binding)."""
        return {"nodes": list(self.node_order),
                "target_node": self.target_node}

    def load_checkpoint(self, path: Union[str, Path]
                        ) -> TrainingCheckpoint:
        """Restore a :meth:`save_checkpoint` snapshot; resume via fit().

        Validates everything (config compatibility, tensor names and
        shapes, optimizer buffers, holdout fingerprint) *before*
        mutating any state, so a bad checkpoint raises one
        :class:`~repro.nn.CheckpointError` and leaves the trainer
        untouched.  After a successful load, ``fit()`` continues from
        the recorded step and reproduces the uninterrupted run
        bit-for-bit.
        """
        from ..infer.cache import named_tensors

        ckpt = read_checkpoint(path)
        current = asdict(self.config)
        # checkpoint_every may legitimately differ between the original
        # and the resumed invocation, and `compile` only changes *how*
        # the (bit-identical) step executes; everything else changes
        # the math.  A key absent from an older checkpoint is accepted
        # when the current value is the dataclass default — new config
        # fields must not orphan existing checkpoints (`dtype` still
        # trips this when set to float32, which is math-relevant).
        defaults = asdict(TrainConfig())
        diffs = sorted(
            key for key in set(current) | set(ckpt.config)
            if key not in ("checkpoint_every", "compile")
            and current.get(key) != ckpt.config.get(key)
            and not (key not in ckpt.config
                     and current.get(key) == defaults.get(key))
        )
        if diffs:
            raise CheckpointError(
                f"checkpoint {path} was written under a different "
                f"TrainConfig (differing fields: {', '.join(diffs)}); "
                "resume with the original configuration"
            )
        tensors = dict(named_tensors(self.model))
        missing = sorted(set(tensors) - set(ckpt.params))
        unexpected = sorted(set(ckpt.params) - set(tensors))
        if missing or unexpected:
            offending = (missing or unexpected)[0]
            raise CheckpointError(
                f"checkpoint {path} parameter set mismatch at key "
                f"{offending!r} (missing={missing}, "
                f"unexpected={unexpected})"
            )
        for name, value in ckpt.params.items():
            if tensors[name].data.shape != value.shape:
                raise CheckpointError(
                    f"checkpoint {path} key {name!r} has shape "
                    f"{value.shape}, model expects "
                    f"{tensors[name].data.shape}"
                )
        if (ckpt.holdout is None) != (self.selector is None):
            raise CheckpointError(
                f"checkpoint {path} holdout state mismatch: checkpoint "
                f"{'has' if ckpt.holdout else 'lacks'} a holdout split, "
                f"trainer {'has' if self.selector else 'lacks'} one"
            )
        if self.selector is not None:
            try:
                self.selector.verify_state(ckpt.holdout)
            except ValueError as exc:
                raise CheckpointError(
                    f"checkpoint {path} holdout fingerprint mismatch: "
                    f"{exc}") from exc

        # All validated — apply.
        for name, value in ckpt.params.items():
            # repro-check: disable=tensor-data-mutation -- checkpoint load writes leaf tensors between runs
            tensors[name].data[...] = value
        try:
            self.optimizer.load_state_dict(ckpt.optimizer)
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {path} optimizer state invalid: {exc}"
            ) from exc
        restore_rng(self.rng, ckpt.rng_states["train"])
        restore_rng(self.model.readout._noise_rng,
                    ckpt.rng_states["noise"])
        if self.keeper is not None and ckpt.keeper is not None:
            self.keeper.load_state_dict(ckpt.keeper)
        self._swa_sum = None if ckpt.swa_sum is None \
            else [acc.copy() for acc in ckpt.swa_sum]
        self._swa_count = ckpt.swa_count
        self.history = [dict(record) for record in ckpt.history]
        self._start_step = ckpt.step
        self.interrupted = False
        return ckpt

    # ------------------------------------------------------------------
    def _sample_subsets(self) -> List[np.ndarray]:
        """Per-design endpoint subsets, in source-then-target order.

        The RNG consumption order is identical between the fused and
        looped paths, which is what keeps them step-for-step comparable.
        """
        cfg = self.config
        subsets = []
        for design in self.source + self.target:
            pool = self.selector.training_pool(design) \
                if self.selector else None
            if pool is not None:
                subsets.append(sample_from_pool(pool, cfg.batch_endpoints,
                                                self.rng))
            else:
                subsets.append(sample_endpoints(design, cfg.batch_endpoints,
                                                self.rng))
        return subsets

    def _features_looped(self, subsets: List[np.ndarray]
                         ) -> Tuple[Tensor, Tensor, Tensor]:
        """Legacy per-design extraction (the pre-fusion implementation).

        Runs the reference per-level autograd sweep so benchmarks
        measure the seed implementation; values are identical to the
        fused path either way.
        """
        parts_u, parts_un, parts_ud = [], [], []
        with reference_sweep():
            for design, subset in zip(self.source + self.target, subsets):
                u, u_n, u_d = self.model.path_features(design, subset)
                parts_u.append(u)
                parts_un.append(u_n)
                parts_ud.append(u_d)
        return (concatenate(parts_u, axis=0),
                concatenate(parts_un, axis=0),
                concatenate(parts_ud, axis=0))

    def _batch_inputs(self, subsets: List[np.ndarray]
                      ) -> Dict[str, np.ndarray]:
        """The fused batch's per-step gather results (rows + images)."""
        inputs: Dict[str, np.ndarray] = {}
        if self.config.fused:
            if self._fused_batch is None:
                self._fused_batch = FusedDesignBatch(self.source + self.target)
            batch = self._fused_batch
            inputs["rows"] = batch.merged_endpoint_rows(subsets)
            inputs["images"] = batch.stacked_path_images(subsets)
        return inputs

    def _noise_inputs(self, subsets: List[np.ndarray]
                      ) -> Dict[str, np.ndarray]:
        """Per-design labels and pre-drawn reparameterisation noise.

        Drawing the noise *here* — in the exact order the historical
        in-graph sampling consumed the generator (per design: posterior
        draw, then prior draw when ``prior_weight > 0``) — keeps the
        run's random stream byte-identical while making the loss a pure
        function of its inputs, which is what lets a compiled replay
        reproduce eager execution bit for bit, and what lets the
        data-parallel trainer pre-draw every shard's noise in the
        parent (see :mod:`repro.train.parallel`).
        """
        cfg = self.config
        readout = self.model.readout
        m = readout.feature_size
        inputs: Dict[str, np.ndarray] = {}
        for i, (design, subset) in enumerate(zip(self.source + self.target,
                                                 subsets)):
            labels = np.asarray(design.labels[subset], dtype=float)
            inputs[f"y{i}"] = labels.reshape(1, -1, 1)
            inputs[f"eps_q{i}"] = readout.draw_noise((len(subset), m))
            if cfg.prior_weight > 0.0:
                inputs[f"eps_p{i}"] = readout.draw_noise((1, m))
        return inputs

    def _step_inputs(self, subsets: List[np.ndarray]) -> Dict[str, np.ndarray]:
        """Everything that varies between steps, as named plain arrays.

        These are the per-step inputs of the (compiled or eager) loss
        graph: the merged endpoint rows and stacked layout images of
        the fused batch, each design's labels, and the pre-drawn
        reparameterisation noise (see :meth:`_noise_inputs` for why the
        noise is drawn outside the graph).
        """
        inputs = self._batch_inputs(subsets)
        inputs.update(self._noise_inputs(subsets))
        return inputs

    def _loss_parts(self, warmup: bool, subsets: List[np.ndarray],
                    inputs: Dict[str, np.ndarray]
                    ) -> Tuple[Tensor, Tensor, Tensor, Tensor]:
        """Build the step's loss graph from prepared inputs.

        Shared verbatim by eager execution and the compile trace:
        ``step_input``/``step_index`` register the arrays on the active
        tape during a trace and are plain wrappers otherwise, so the
        compiled program replays exactly the graph eager runs.
        """
        cfg = self.config
        gamma1 = 0.0 if warmup else cfg.gamma1
        gamma2 = 0.0 if warmup else cfg.gamma2
        kl_weight = 0.0 if warmup else cfg.kl_weight
        designs = self.source + self.target
        with timed("train.features"):
            if cfg.fused:
                rows = step_index("rows", inputs["rows"])
                images = step_input("images", inputs["images"])
                u, u_n, u_d = self._fused_batch.path_features_from(
                    self.model, rows, images)
            else:
                u, u_n, u_d = self._features_looped(subsets)
        z = self.model.disentangler.recombine(u_n, u_d)
        ranges = slice_ranges([len(s) for s in subsets])
        # Designs are ordered node-by-node (sources in chain order,
        # target last), so each node's block is one contiguous row range
        # of the batched features.
        node_bounds = []
        first = 0
        row_lo = 0
        for node in self.node_order:
            count = len(self.node_groups[node])
            row_hi = ranges[first + count - 1][1]
            node_bounds.append((row_lo, row_hi))
            row_lo = row_hi
            first += count
        un_groups = [u_n[lo:hi] for lo, hi in node_bounds]

        priors = {node: self.model.prior_for(un_groups[i], u_d)
                  for i, node in enumerate(self.node_order)}

        elbo_total = None
        with timed("train.elbo"):
            for i, (design, subset, (lo, hi)) in enumerate(
                    zip(designs, subsets, ranges)):
                prior_mu, prior_lv = priors[design.node]
                y = step_input(f"y{i}", inputs[f"y{i}"])
                eps_q = step_input(f"eps_q{i}", inputs[f"eps_q{i}"])
                eps_p = step_input(f"eps_p{i}", inputs[f"eps_p{i}"]) \
                    if cfg.prior_weight > 0.0 else None
                term = self.model.readout.elbo_loss(
                    u[lo:hi], z[lo:hi], y,
                    prior_mu, prior_lv, kl_weight=kl_weight,
                    obs_var=self.node_obs_var[design.node],
                    prior_weight=cfg.prior_weight,
                    noise=(eps_q, eps_p),
                )
                elbo_total = term if elbo_total is None \
                    else elbo_total + term

        with timed("train.align"):
            clr = node_contrastive_loss_multi(
                un_groups, temperature=cfg.temperature)
            # Slice u_d only now so the backward accumulation order into
            # u_d matches the legacy two-node tape bit-for-bit.
            ud_groups = [u_d[lo:hi] for lo, hi in node_bounds]
            cmd = cmd_loss_multi(ud_groups, max_order=cfg.cmd_order,
                                 mode=cfg.cmd_mode)
        total = elbo_total + gamma1 * clr + gamma2 * cmd
        return total, elbo_total, clr, cmd

    def _program_key(self, warmup: bool,
                     subsets: List[np.ndarray]) -> Tuple:
        """Program signature: retrace whenever any of this changes."""
        return (bool(warmup), tuple(len(s) for s in subsets),
                self.config.dtype)

    def _compile_program(self, key: Tuple, warmup: bool,
                         subsets: List[np.ndarray],
                         inputs: Dict[str, np.ndarray]
                         ) -> Optional[CompiledStep]:
        """Trace one step and compile it; None (eager fallback) on failure."""
        try:
            with timed("train.trace"):
                with trace() as tape:
                    total, elbo, clr, cmd = self._loss_parts(
                        warmup, subsets, inputs)
                program = CompiledStep(
                    tape, total,
                    outputs={"total": total, "elbo": elbo,
                             "contrastive": clr, "cmd": cmd},
                    dtype=self.config.dtype,
                )
        except CompileError as exc:
            self._compile_disabled = True
            self.logger.log_event(
                "note",
                message=f"step compilation failed, running eager: {exc}",
            )
            return None
        self._programs[key] = program
        return program

    def _grads_compiled(self, warmup: bool, subsets: List[np.ndarray],
                        inputs: Dict[str, np.ndarray]
                        ) -> Optional[Dict[str, float]]:
        """Populate gradients through the compiled program, if possible.

        Returns ``None`` whenever eager execution should handle the
        step instead: compilation disabled/failed, or the per-signature
        retrace budget is exhausted (a guard against pathological
        parameter rebinding re-tracing every step).
        """
        key = self._program_key(warmup, subsets)
        if self._compile_disabled \
                or self._retrace_counts.get(key, 0) > self._max_retraces:
            return None
        for _attempt in range(2):
            program = self._programs.get(key)
            if program is None:
                program = self._compile_program(key, warmup, subsets,
                                                inputs)
                if program is None:
                    return None
            self.model.zero_grad()
            try:
                with timed("train.replay"):
                    out = program.replay(inputs,
                                         profile=self.profile_ops)
            except ReplayMismatch as exc:
                # Stale program (a parameter array was rebound or an
                # input changed shape under the same signature): drop
                # it and retrace once, this same step.
                self._programs.pop(key, None)
                self._retrace_counts[key] = \
                    self._retrace_counts.get(key, 0) + 1
                self.retraces += 1
                self.logger.log_event(
                    "note", message=f"compiled step retraced: {exc}")
                continue
            return {name: float(np.asarray(value).reshape(()))
                    for name, value in out.items()}
        return None

    def _grads_eager(self, warmup: bool, subsets: List[np.ndarray],
                     inputs: Dict[str, np.ndarray]) -> Dict[str, float]:
        """Populate gradients eagerly (graph built per call)."""
        total, elbo, clr, cmd = self._loss_parts(warmup, subsets, inputs)
        with timed("train.backward"):
            self.model.zero_grad()
            total.backward()
        return {"total": total.item(), "elbo": elbo.item(),
                "contrastive": clr.item(), "cmd": cmd.item()}

    def compute_gradients(self, warmup: bool, subsets: List[np.ndarray],
                          inputs: Dict[str, np.ndarray]
                          ) -> Dict[str, float]:
        """Forward + backward over prepared inputs; no optimiser step.

        Leaves every parameter's ``.grad`` populated with the loss
        gradients of this batch and returns the scalar loss parts
        (``total``/``elbo``/``contrastive``/``cmd``).  This is the unit
        of work a data-parallel shard worker executes: the caller (the
        single-process :meth:`step`, or the parallel parent after
        averaging shard gradients) applies clipping and the optimiser
        update.
        """
        values = None
        if self.config.compile and self.config.fused:
            values = self._grads_compiled(warmup, subsets, inputs)
        if values is None:
            values = self._grads_eager(warmup, subsets, inputs)
        return values

    def step(self, warmup: bool = False) -> Dict[str, float]:
        """One optimisation step over all designs; returns loss parts.

        During warmup the alignment losses and the KL term are disabled,
        so the extractor first learns plain cross-node regression (the
        same signal PT-FT's pretraining provides) before the
        disentangle/align/Bayesian machinery shapes the feature space.

        With ``config.fused`` (the default) all designs share one GNN
        sweep over the disjoint-union graph and one stacked CNN forward;
        per-design blocks are recovered as contiguous row ranges.  The
        looped path recomputes them design by design — same numbers,
        ~#designs more autograd nodes.

        With ``config.compile`` (the default, fused only) the step's op
        graph is traced once per (warmup, batch-shape, dtype) signature
        and thereafter replayed as a flat schedule of preallocated
        numpy kernels — bit-for-bit identical results in float64, so
        eager and compiled runs are interchangeable mid-run via
        checkpoints.  Any compile failure falls back to eager.
        """
        start = time.perf_counter()
        cfg = self.config
        subsets = self._sample_subsets()
        inputs = self._step_inputs(subsets)
        values = self.compute_gradients(warmup, subsets, inputs)
        grad_norm = float(self.optimizer.clip_grad_norm(cfg.grad_clip))
        self.optimizer.step()
        return {
            "total": values["total"],
            "elbo": values["elbo"],
            "contrastive": values["contrastive"],
            "cmd": values["cmd"],
            "lr": float(self.optimizer.lr),
            "grad_norm": grad_norm,
            "grad_norm_clipped": float(min(grad_norm, cfg.grad_clip)),
            "warmup": bool(warmup),
            "step_seconds": time.perf_counter() - start,
        }

    def fit(self, steps: Optional[int] = None) -> List[Dict[str, float]]:
        """Run the full loop; returns per-step loss history.

        The final weights come from exactly one source, recorded in
        ``final_weights_source`` and logged as a ``final_weights``
        telemetry event:

        - ``"swa"`` — tail-averaged iterates, when ``swa_fraction < 1``
          (checkpoint selection is rejected at construction in that
          case, so the average can never be silently overwritten);
        - ``"best-checkpoint"`` — the best held-out validation
          snapshot, when selection is enabled and a snapshot was kept;
        - ``"final-iterate"`` — otherwise.

        After the last step the node-level priors p(W | N) are finalised
        on the training designs, which is what inference uses (Eq. 7).

        **Crash safety.**  With ``config.checkpoint_every > 0`` (and a
        resolvable checkpoint path — see :meth:`checkpoint_path`) a
        resumable snapshot is written atomically every that-many
        completed steps.  A :meth:`request_stop` (the CLI wires SIGINT/
        SIGTERM to it) finishes the in-flight step, writes one final
        checkpoint, sets ``interrupted`` and returns early — skipping
        the final-weights selection, because the run is meant to be
        resumed.  After :meth:`load_checkpoint`, ``fit`` continues from
        the recorded step and the completed run is bit-for-bit
        identical to an uninterrupted one.
        """
        steps = steps or self.config.steps
        warmup_steps = int(self.config.warmup_fraction * steps)
        swa_start = int(self.config.swa_fraction * steps)
        base_lr = self.config.lr
        params = self.model.parameters()
        start_step = self._start_step
        if start_step == 0:
            # Fresh run (or the next sequential fit of a multi-stage
            # recipe): SWA accumulators and best-checkpoint tracking
            # belong to one loop only.  A resumed fit keeps the state
            # load_checkpoint restored.
            self._swa_sum = None
            self._swa_count = 0
            if self.keeper is not None:
                self.keeper = CheckpointKeeper(self.model)
        elif start_step >= steps:
            raise ValueError(
                f"checkpoint is at step {start_step} but the run is "
                f"only {steps} steps; nothing to resume"
            )
        keeper = self.keeper
        step_offset = len(self.history)
        ckpt_path = self.checkpoint_path()
        self.interrupted = False
        self._stop_requested = False
        for t in range(start_step, steps):
            # Linear learning-rate decay stabilises the final priors.
            decay = self.config.lr_decay
            self.optimizer.lr = base_lr * (1.0 - (1.0 - decay) * t / steps)
            record = self.step(warmup=t < warmup_steps)
            self.history.append(record)
            self.logger.log_step(step_offset + (t - start_step), record)
            if t >= swa_start:
                # Stochastic weight averaging over the tail of training:
                # the averaged iterate is far less sensitive to the noise
                # of the last few minibatches than the final iterate.
                if self._swa_sum is None:
                    self._swa_sum = [p.data.copy() for p in params]
                else:
                    for acc, p in zip(self._swa_sum, params):
                        acc += p.data
                self._swa_count += 1
            last = t == steps - 1
            if keeper is not None and t >= warmup_steps \
                    and (t % self.config.eval_every == 0 or last):
                self._validate_and_keep(keeper,
                                        step_offset + (t - start_step))
            done = t + 1
            if self._stop_requested and not last:
                self.interrupted = True
                self._start_step = done
                if ckpt_path is not None:
                    self.save_checkpoint(step=done, path=ckpt_path)
                self.logger.log_event(
                    "note",
                    message=f"graceful stop after step {done}/{steps}; "
                            f"checkpoint "
                            f"{'written' if ckpt_path else 'unavailable'}",
                )
                break
            if ckpt_path is not None and self.config.checkpoint_every \
                    and done % self.config.checkpoint_every == 0 \
                    and not last:
                self.save_checkpoint(step=done, path=ckpt_path)
        self.optimizer.lr = base_lr
        if self.interrupted:
            return self.history
        self._start_step = 0
        if self._swa_count > 1:
            for acc, p in zip(self._swa_sum, params):
                # repro-check: disable=tensor-data-mutation -- SWA writes averaged leaf weights between steps
                p.data[...] = acc / self._swa_count
            self.final_weights_source = "swa"
        elif keeper is not None and keeper.best_state is not None:
            keeper.restore()
            self.final_weights_source = "best-checkpoint"
        else:
            self.final_weights_source = "final-iterate"
        self.logger.log_event("final_weights",
                              source=self.final_weights_source)
        self.model.finalize_node_priors(self.source + self.target,
                                        seed=self.config.seed)
        return self.history

    def _validate_and_keep(self, keeper: CheckpointKeeper,
                           step: int) -> None:
        """Score the current model on held-out 7nm paths; keep if best."""
        self.model.finalize_node_priors(self.source + self.target,
                                        seed=self.config.seed)
        score = self.selector.validate(
            lambda design, idx: self.model.predict(design, idx)
        )
        best = keeper.offer(score)
        self.logger.log_validation(step, score, best)


def train_ours(designs: Sequence[DesignData], in_features: int,
               config: Optional[TrainConfig] = None,
               model_seed: int = 0,
               use_disentangle_align: bool = True,
               use_bayesian: bool = True,
               logger: Optional[RunLogger] = None) -> TimingPredictor:
    """Build and train the paper's model.

    The two ``use_*`` flags implement the Figure 8 ablations: turning off
    ``use_disentangle_align`` zeroes gamma1/gamma2 (no alignment losses),
    turning off ``use_bayesian`` fixes the readout's variance to (near)
    zero and drops the KL term, reducing it to a deterministic
    input-conditioned linear layer.
    """
    config = config or TrainConfig()
    if not use_disentangle_align:
        config = TrainConfig(**{**config.__dict__,
                                "gamma1": 0.0, "gamma2": 0.0})
    if not use_bayesian:
        config = TrainConfig(**{**config.__dict__, "kl_weight": 0.0})
    model = TimingPredictor(in_features, seed=model_seed)
    if not use_bayesian:
        _freeze_variance(model)
    OursTrainer(model, designs, config, logger=logger).fit()
    return model


def _freeze_variance(model: TimingPredictor) -> None:
    """Pin the readout's weight variance near zero (Bayesian-off ablation)."""
    for param in model.readout.logvar_net.parameters():
        # repro-check: disable=tensor-data-mutation -- ablation pins frozen leaves before training starts
        param.data[...] = 0.0
        param.requires_grad = False
    # Bias the final layer output to a very small log-variance.
    last = model.readout.logvar_net.net.modules[-1]
    # repro-check: disable=tensor-data-mutation -- ablation pins a frozen leaf before training starts
    last.bias.data[...] = -9.0
