"""Data-parallel training: shard the fused step across processes.

The compiled fused step (DESIGN.md §11) saturates one core, so the
remaining scaling axis is width.  :class:`ParallelTrainer` splits each
step's design union along its natural cut point — the contiguous
per-design row ranges of the fused batch (:func:`.fused.slice_ranges`)
— across N persistent worker processes.  Each worker owns one
contiguous block of the source designs and one of the target designs
(:func:`.fused.partition_counts`), builds its *own*
:class:`~repro.train.fused.FusedDesignBatch` and compiled program over
just those designs, and computes loss parts + parameter gradients on
its shard (:func:`repro.train.worker.shard_worker_main`).

**Transport.**  All tensor traffic goes through preallocated
``multiprocessing.shared_memory`` buffers laid out by
:mod:`repro.nn.flat`: one weights vector the parent writes before every
dispatch, and per-worker input (endpoint subsets + pre-drawn MC noise)
and gradient vectors.  The control pipes carry only tiny tuples
(scalars and bool masks) — no per-step pickling of tensors.  Workers
are forked, so they inherit the model, design data and the shared
buffers directly; they never re-attach by name (which would double-
register the segments with the resource tracker).

**Determinism contract.**  The parent is the only process that ever
consumes an RNG: it draws every design's endpoint subset and MC noise
in the exact global source-then-target order the single-process step
uses (:meth:`OursTrainer._sample_subsets` /
:meth:`OursTrainer._noise_inputs`), then ships each shard its slice.
Workers are pure functions of (weights, subsets, noise).  Hence the
random streams — and therefore checkpoints, which capture only
parent-side state (PR 5's RNG capture) — are identical for *any*
worker count, a ``workers=1`` run is bit-for-bit equal to the
single-process step (the gradient round-trip through the flat buffers
is exact, including the ``None``-grad skip structure), and a killed
run resumed *at the same worker count* reproduces the uninterrupted
run bit-for-bit.  A checkpoint never binds the count — any fleet size
resumes any checkpoint — but since the N > 1 objective depends on the
sharding, only the same count (or N = 1, which equals single-process)
continues the exact number stream.

**Objective.**  The fused loss does not decompose exactly across
design shards for N > 1: the amortised priors (population means over
the batch), the contrastive term and the CMD term couple all designs.
Like per-device InfoNCE in standard DDP practice, each shard computes
these terms over its own designs and the parent averages shard losses
and gradients weighted by shard endpoint counts — exact at N = 1,
and a documented approximation for N > 1 (bench records the measured
deviation; see DESIGN.md §14).

**Failure/restart semantics.**  The parent holds the only optimiser
and all checkpoint state.  A worker that dies or stops replying raises
:class:`WorkerError` in the parent; recovery is ``--resume`` from the
last periodic checkpoint, which restarts a fresh worker fleet.
Workers are daemonic and exit on command-pipe EOF, so a hard-killed
parent cannot leak them.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..flow import DesignData
from ..model import TimingPredictor
from ..nn.flat import flat_size, write_params
from ..obs import RunLogger
from ..util import merge_timings
from .fused import partition_counts, slice_ranges
from .trainer import OursTrainer, TrainConfig
from .worker import shard_worker_main

__all__ = ["ParallelTrainer", "ShardChannel", "WorkerError",
           "resolve_worker_count"]


class WorkerError(RuntimeError):
    """A shard worker died, failed, or stopped replying."""


def resolve_worker_count(requested: int, *, n_source: int, n_target: int,
                         cpu_count: Optional[int] = None
                         ) -> Tuple[int, List[str]]:
    """Validated effective worker count plus human-readable warnings.

    Rejects ``requested < 1``; clamps to the machine's CPU count (more
    processes than cores only add switching overhead) and to
    ``min(n_source, n_target)`` (every shard needs at least one design
    from each node, and an idle shard wastes a process).  The CLI
    prints the warnings; library callers may ignore them.
    """
    if requested < 1:
        raise ValueError(f"workers must be >= 1, got {requested}")
    warnings: List[str] = []
    effective = requested
    cores = cpu_count if cpu_count is not None else \
        (multiprocessing.cpu_count() or 1)
    if effective > cores:
        warnings.append(
            f"--workers {effective} exceeds the machine's {cores} "
            f"CPU(s); clamping to {cores}"
        )
        effective = cores
    usable = min(n_source, n_target)
    if usable >= 1 and effective > usable:
        warnings.append(
            f"--workers {effective} exceeds the {usable} usable "
            f"shard(s) (min of {n_source} source / {n_target} target "
            f"designs); clamping to {usable} — idle shards would "
            f"waste processes"
        )
        effective = usable
    return effective, warnings


@dataclass
class _ShardReply:
    """One worker's per-step result (scalars only; grads ride in shm)."""

    values: Dict[str, float]
    mask: Tuple[bool, ...]
    seconds: float
    timings: Optional[Dict[str, Dict[str, float]]]


class ShardChannel:
    """Parent/worker rendezvous for one shard: shared buffers + pipes.

    Created in the parent *before* the fork, so the worker inherits the
    :class:`~multiprocessing.shared_memory.SharedMemory` objects and
    the numpy views over them — both sides address the same pages and
    nobody ever re-attaches a segment by name.  Layout per shard design
    ``i`` (capacities fixed at construction, actual sizes travel in the
    step command):

    - ``subsets``: ``batch_endpoints`` int64 slots,
    - ``eps_q``: ``mc_samples * batch_endpoints * feature_size``
      float64 slots,
    - ``eps_p``: ``mc_samples * feature_size`` float64 slots (only
      when the prior term is active).

    ``grads`` is the worker's flat output vector
    (:func:`repro.nn.flat.write_grads` layout) and ``weights`` the
    fleet-shared parameter vector the parent rewrites before every
    dispatch.  The parent owns (and unlinks) every segment.
    """

    def __init__(self, ctx, *, n_designs: int, batch_endpoints: int,
                 mc_samples: int, feature_size: int, ship_prior: bool,
                 grad_elems: int, weights: np.ndarray) -> None:
        self.n_designs = n_designs
        self._cap = batch_endpoints
        self._mc = mc_samples
        self._m = feature_size
        self._epsq = mc_samples * batch_endpoints * feature_size
        self._epsp = mc_samples * feature_size if ship_prior else 0
        sub_elems = n_designs * self._cap
        eps_elems = n_designs * (self._epsq + self._epsp)
        self._shm_in = shared_memory.SharedMemory(
            create=True, size=max(8, 8 * (sub_elems + eps_elems)))
        self._shm_grads = shared_memory.SharedMemory(
            create=True, size=max(8, 8 * grad_elems))
        self._subs = np.frombuffer(self._shm_in.buf, dtype=np.int64,
                                   count=sub_elems)
        self._eps = np.frombuffer(self._shm_in.buf, dtype=np.float64,
                                  count=eps_elems, offset=8 * sub_elems)
        self.grads = np.frombuffer(self._shm_grads.buf, dtype=np.float64,
                                   count=grad_elems)
        self.weights = weights
        self.cmd_recv, self.cmd_send = ctx.Pipe(duplex=False)
        self.res_recv, self.res_send = ctx.Pipe(duplex=False)

    # -- pipe hygiene ---------------------------------------------------
    # Each side closes the ends it does not use, so a dead parent turns
    # into EOF on the worker's command pipe (and vice versa) instead of
    # a silent hang.
    def as_parent(self) -> None:
        self.cmd_recv.close()
        self.res_send.close()

    def as_worker(self) -> None:
        self.cmd_send.close()
        self.res_recv.close()

    # -- per-design regions --------------------------------------------
    def write_subsets(self, subsets: Sequence[np.ndarray]) -> None:
        for i, subset in enumerate(subsets):
            off = i * self._cap
            self._subs[off:off + len(subset)] = subset

    def read_subsets(self, sizes: Sequence[int]) -> List[np.ndarray]:
        return [self._subs[i * self._cap:i * self._cap + n].copy()
                for i, n in enumerate(sizes)]

    def write_noise(self, i: int, eps_q: np.ndarray,
                    eps_p: Optional[np.ndarray]) -> None:
        base = i * (self._epsq + self._epsp)
        self._eps[base:base + eps_q.size] = eps_q.reshape(-1)
        if eps_p is not None and self._epsp:
            off = base + self._epsq
            self._eps[off:off + eps_p.size] = eps_p.reshape(-1)

    def read_noise(self, i: int, size: int
                   ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        base = i * (self._epsq + self._epsp)
        used = self._mc * size * self._m
        eps_q = self._eps[base:base + used] \
            .reshape(self._mc, size, self._m).copy()
        eps_p = None
        if self._epsp:
            off = base + self._epsq
            eps_p = self._eps[off:off + self._epsp] \
                .reshape(self._mc, 1, self._m).copy()
        return eps_q, eps_p

    # -- teardown -------------------------------------------------------
    def close(self, unlink: bool = False) -> None:
        """Release the buffers (parent passes ``unlink=True``)."""
        # Drop the numpy views first: SharedMemory.close() refuses to
        # tear down a mapping that still has exported buffers.  The
        # weights view belongs to the fleet-shared segment — clearing
        # the reference here lets the owner close that one too.
        self._subs = self._eps = self.grads = self.weights = None
        for shm in (self._shm_in, self._shm_grads):
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
            if unlink:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass


class ParallelTrainer(OursTrainer):
    """Data-parallel :class:`OursTrainer`: N shard workers, one learner.

    Drop-in replacement for :class:`OursTrainer` — ``fit``, SWA,
    held-out selection, checkpointing and graceful stop are inherited
    unchanged; only :meth:`step` is overridden to dispatch shards and
    average their gradients.  ``workers`` is an execution knob, not
    part of :class:`TrainConfig`: a checkpoint written at one worker
    count loads into any other (bit-exact continuation needs the same
    count, since the N > 1 objective depends on the sharding; N = 1 is
    exactly the single-process math).

    Workers are started lazily on the first step and shut down when
    ``fit`` returns (or via :meth:`shutdown`), so a trainer that only
    loads checkpoints never forks.
    """

    def __init__(self, model: TimingPredictor,
                 designs: Sequence[DesignData],
                 config: Optional[TrainConfig] = None,
                 logger: Optional[RunLogger] = None,
                 checkpoint_path: Union[str, Path, None] = None,
                 workers: int = 1) -> None:
        super().__init__(model, designs, config, logger=logger,
                         checkpoint_path=checkpoint_path)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        usable = min(len(self.source), len(self.target))
        if workers > usable:
            self.logger.log_event(
                "note",
                message=f"workers={workers} exceeds the {usable} usable "
                        f"shard(s); clamping",
            )
            workers = usable
        self.workers = workers
        src_ranges = slice_ranges(partition_counts(len(self.source),
                                                   workers))
        tgt_ranges = slice_ranges(partition_counts(len(self.target),
                                                   workers))
        n_src = len(self.source)
        #: Per shard: global design indices (source block, then target
        #: block) — contiguous in the global source-then-target order,
        #: so each worker's local ``_loss_parts`` sees the same layout
        #: invariants as the single-process step.
        self._shard_indices: List[List[int]] = [
            list(range(sa, sb)) + [n_src + t for t in range(ta, tb)]
            for (sa, sb), (ta, tb) in zip(src_ranges, tgt_ranges)
        ]
        self._procs: List[Any] = []
        self._channels: List[ShardChannel] = []
        self._weights_shm: Optional[shared_memory.SharedMemory] = None
        self._weights: Optional[np.ndarray] = None
        self._started = False
        #: Ceiling on one shard step; a worker silent past it is
        #: declared dead (the step itself takes well under a second).
        self.reply_timeout = 600.0

    def _checkpoint_extra(self) -> Dict[str, object]:
        """Record the worker count (telemetry only — any count resumes)."""
        extra = super()._checkpoint_extra()
        extra["workers"] = self.workers
        return extra

    # -- worker lifecycle ----------------------------------------------
    def _start_workers(self) -> None:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise WorkerError(
                "data-parallel training needs the 'fork' start method "
                f"(unavailable on this platform: {exc})") from exc
        cfg = self.config
        designs = self.source + self.target
        params = self.optimizer.parameters
        grad_elems = flat_size(params)
        self._weights_shm = shared_memory.SharedMemory(
            create=True, size=max(8, 8 * grad_elems))
        self._weights = np.frombuffer(self._weights_shm.buf,
                                      dtype=np.float64, count=grad_elems)
        readout = self.model.readout
        for shard in self._shard_indices:
            channel = ShardChannel(
                ctx,
                n_designs=len(shard),
                batch_endpoints=cfg.batch_endpoints,
                mc_samples=readout.mc_samples,
                feature_size=readout.feature_size,
                ship_prior=cfg.prior_weight > 0.0,
                grad_elems=grad_elems,
                weights=self._weights,
            )
            proc = ctx.Process(
                target=shard_worker_main,
                args=(self.model, [designs[g] for g in shard],
                      cfg, self.node_obs_var, channel),
                daemon=True,
            )
            proc.start()
            channel.as_parent()
            self._procs.append(proc)
            self._channels.append(channel)
        self._started = True

    def shutdown(self) -> None:
        """Stop the worker fleet and release every shared segment."""
        if not self._started:
            return
        for channel in self._channels:
            try:
                channel.cmd_send.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
        for channel in self._channels:
            try:
                channel.cmd_send.close()
                channel.res_recv.close()
            except OSError:  # pragma: no cover
                pass
            channel.close(unlink=True)
        self._procs = []
        self._channels = []
        self._weights = None
        if self._weights_shm is not None:
            try:
                self._weights_shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
            try:
                self._weights_shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._weights_shm = None
        self._started = False

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.shutdown()
        # repro-check: disable=bare-except -- __del__ must never raise; at interpreter teardown any module global may already be gone
        except Exception:
            pass

    def _collect(self, k: int) -> _ShardReply:
        """The next reply from worker ``k``; raises on death/timeout."""
        channel, proc = self._channels[k], self._procs[k]
        deadline = time.monotonic() + self.reply_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerError(
                    f"shard worker {k} gave no reply within "
                    f"{self.reply_timeout:.0f}s; resume from the last "
                    f"checkpoint to restart the fleet")
            try:
                if channel.res_recv.poll(min(remaining, 0.5)):
                    reply = channel.res_recv.recv()
                    break
            except (EOFError, OSError):
                raise WorkerError(
                    f"shard worker {k} (pid {proc.pid}) closed its "
                    f"result pipe; resume from the last checkpoint to "
                    f"restart the fleet") from None
            if not proc.is_alive():
                raise WorkerError(
                    f"shard worker {k} (pid {proc.pid}) died with exit "
                    f"code {proc.exitcode}; resume from the last "
                    f"checkpoint to restart the fleet")
        if reply[0] == "err":
            raise WorkerError(
                f"shard worker {k} failed:\n{reply[1]}")
        _, values, mask, seconds, timings = reply
        return _ShardReply(values=dict(values), mask=tuple(mask),
                           seconds=float(seconds), timings=timings)

    # -- the data-parallel step ----------------------------------------
    def step(self, warmup: bool = False) -> Dict[str, float]:
        """One optimisation step with shard-parallel gradient work.

        Samples subsets and draws MC noise exactly as the
        single-process step would (same RNG streams, same order),
        broadcasts the current weights, dispatches each shard its
        slices, then averages the shard gradients and loss parts
        weighted by shard endpoint counts and applies the only
        optimiser step.  With one worker the average is an exact copy,
        so the whole step is bit-for-bit the single-process step.
        """
        start = time.perf_counter()
        cfg = self.config
        if not self._started:
            self._start_workers()
        subsets = self._sample_subsets()
        noise = self._noise_inputs(subsets)
        write_params(self.optimizer.parameters, self._weights)
        for channel, shard in zip(self._channels, self._shard_indices):
            shard_subsets = [subsets[g] for g in shard]
            channel.write_subsets(shard_subsets)
            for i, g in enumerate(shard):
                channel.write_noise(i, noise[f"eps_q{g}"],
                                    noise.get(f"eps_p{g}"))
            channel.cmd_send.send(
                ("step", bool(warmup),
                 tuple(len(s) for s in shard_subsets),
                 bool(self.profile_ops)))
        replies = [self._collect(k) for k in range(self.workers)]

        counts = [sum(len(subsets[g]) for g in shard)
                  for shard in self._shard_indices]
        total_count = sum(counts)
        if self.workers == 1:
            # Exact path: no arithmetic between the worker's gradients
            # and the optimiser, so workers=1 is bitwise the
            # single-process step.
            grads = self._channels[0].grads.copy()
            values = dict(replies[0].values)
            mask = list(replies[0].mask)
        else:
            grads = np.zeros_like(self._channels[0].grads)
            values = {key: 0.0 for key in replies[0].values}
            mask = [False] * len(replies[0].mask)
            for channel, reply, count in zip(self._channels, replies,
                                             counts):
                weight = count / total_count
                grads += weight * channel.grads
                for key in values:
                    values[key] += weight * reply.values[key]
                mask = [a or b for a, b in zip(mask, reply.mask)]
        if self.profile_ops:
            # Satellite of the shard protocol: fold every worker's
            # per-step timing snapshot into the parent registry *now*
            # (not at exit), tagged with its shard, so --profile and
            # report-run see all shards even mid-run.
            for k, reply in enumerate(replies):
                if reply.timings:
                    merge_timings(reply.timings, worker=f"w{k}")

        self.optimizer.load_flat_grads(grads, mask)
        grad_norm = float(self.optimizer.clip_grad_norm(cfg.grad_clip))
        self.optimizer.step()
        shard_seconds = [reply.seconds for reply in replies]
        return {
            "total": values["total"],
            "elbo": values["elbo"],
            "contrastive": values["contrastive"],
            "cmd": values["cmd"],
            "lr": float(self.optimizer.lr),
            "grad_norm": grad_norm,
            "grad_norm_clipped": float(min(grad_norm, cfg.grad_clip)),
            "warmup": bool(warmup),
            "step_seconds": time.perf_counter() - start,
            "workers": self.workers,
            "shard_seconds_max": float(max(shard_seconds)),
            "shard_seconds_mean": float(np.mean(shard_seconds)),
        }

    def fit(self, steps: Optional[int] = None) -> List[Dict[str, float]]:
        """Inherited loop; the worker fleet is torn down on the way out."""
        try:
            return super().fit(steps)
        finally:
            self.shutdown()
