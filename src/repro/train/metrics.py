"""Regression metrics used throughout the evaluation (R^2, MAE, RMSE)."""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from ..flow import DesignData


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination.

    Matches the paper's headline metric.  Can be negative when the model
    is worse than predicting the mean (as DAC23-SimpleMerge is in
    Table 2).
    """
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch between targets and predictions")
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else float("-inf")
    return 1.0 - ss_res / ss_tot


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    return float(np.mean(np.abs(np.asarray(y_true) - np.asarray(y_pred))))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(np.mean(
        (np.asarray(y_true) - np.asarray(y_pred)) ** 2
    )))


def evaluate_per_design(predict: Callable[[DesignData], np.ndarray],
                        designs: Sequence[DesignData]
                        ) -> Dict[str, Dict[str, float]]:
    """Run ``predict`` on each design and score it.

    Returns ``{design_name: {"r2": ..., "mae": ..., "rmse": ...}}``.
    """
    results: Dict[str, Dict[str, float]] = {}
    for design in designs:
        pred = predict(design)
        results[design.name] = {
            "r2": r2_score(design.labels, pred),
            "mae": mae(design.labels, pred),
            "rmse": rmse(design.labels, pred),
        }
    return results
