"""Shard worker loop for data-parallel training.

:func:`shard_worker_main` is the ``Process`` target
:class:`~repro.train.parallel.ParallelTrainer` forks once per shard.
A worker is a *pure function* of what the parent ships each step —
current weights, per-design endpoint subsets, pre-drawn MC noise —
plus the shard designs it inherited at fork time.  It owns no RNG
stream, no optimiser and no checkpoint state; it builds a local
:class:`~repro.train.trainer.OursTrainer` over its designs purely to
reuse the fused-batch construction, the compile/retrace machinery and
:meth:`~repro.train.trainer.OursTrainer.compute_gradients`, then packs
the resulting gradients into its shard's shared-memory vector
(:mod:`repro.nn.flat` layout).

Protocol (see :class:`~repro.train.parallel.ShardChannel`): the
command pipe carries ``("step", warmup, sizes, profile)`` /
``("stop",)`` tuples; the reply is ``("ok", loss_values, grad_mask,
seconds, timings)`` with the gradients already in shared memory, or
``("err", traceback)``.  EOF on the command pipe — the signature of a
dead parent — ends the loop, and SIGINT/SIGTERM are ignored so the
parent alone coordinates graceful stops.
"""

from __future__ import annotations

import signal
import time
import traceback
from dataclasses import replace
from typing import Dict, Sequence

import numpy as np

from ..flow import DesignData
from ..model import TimingPredictor
from ..nn.flat import read_params, write_grads
from ..util import get_timings, reset_timings
from .trainer import OursTrainer, TrainConfig

__all__ = ["shard_worker_main", "worker_train_config"]


def worker_train_config(config: TrainConfig) -> TrainConfig:
    """The parent's config with parent-only concerns switched off.

    Holdout selection, SWA and checkpointing belong to the parent (the
    worker never calls ``fit``); every field that shapes the step math
    — loss weights, batch size, fused/compile/dtype — is kept
    verbatim so the shard computes exactly the parent's loss graph.
    """
    return replace(config, holdout_fraction=0.0, swa_fraction=1.0,
                   checkpoint_every=0)


def shard_worker_main(model: TimingPredictor,
                      designs: Sequence[DesignData],
                      config: TrainConfig,
                      node_obs_var: Dict[str, float],
                      channel) -> None:
    """Serve gradient requests for one design shard until stopped.

    ``model`` and ``designs`` arrive through the fork (copy-on-write
    references to the parent's objects), ``channel`` is this shard's
    :class:`~repro.train.parallel.ShardChannel`.  ``node_obs_var`` is
    the parent's *global* per-node label variance — the shard trainer
    would otherwise condition the likelihood on shard-local statistics
    and change the math.
    """
    # The parent coordinates every stop (a "stop" command, or pipe EOF
    # when it is gone); a terminal-wide Ctrl-C must not tear workers
    # out from under an in-flight step.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    channel.as_worker()
    trainer = OursTrainer(model, designs, worker_train_config(config))
    trainer.node_obs_var = dict(node_obs_var)
    params = model.parameters()
    while True:
        try:
            command = channel.cmd_recv.recv()
        except (EOFError, OSError):
            break
        if command[0] == "stop":
            break
        _, warmup, sizes, profile = command
        start = time.perf_counter()
        try:
            trainer.profile_ops = bool(profile)
            if profile:
                # Fresh window per step so the snapshot shipped back is
                # exactly this step's cost, merged parent-side under
                # this shard's worker tag.
                reset_timings()
            read_params(params, channel.weights)
            subsets = channel.read_subsets(sizes)
            inputs = trainer._batch_inputs(subsets)
            for i, (design, subset) in enumerate(zip(designs, subsets)):
                labels = np.asarray(design.labels[subset], dtype=float)
                inputs[f"y{i}"] = labels.reshape(1, -1, 1)
                eps_q, eps_p = channel.read_noise(i, len(subset))
                inputs[f"eps_q{i}"] = eps_q
                if eps_p is not None:
                    inputs[f"eps_p{i}"] = eps_p
            values = trainer.compute_gradients(bool(warmup), subsets,
                                               inputs)
            mask = write_grads(params, channel.grads)
            timings = get_timings() if profile else None
            channel.res_send.send(
                ("ok", values, tuple(mask),
                 time.perf_counter() - start, timings))
        # repro-check: disable=bare-except -- any failure must reach the parent as an ("err", traceback) reply, not kill the worker silently
        except Exception:
            try:
                channel.res_send.send(("err", traceback.format_exc()))
            except (OSError, BrokenPipeError):
                pass
            break
