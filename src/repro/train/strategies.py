"""The four DAC23 baseline training strategies of Table 2.

All baselines share the architecture in
:class:`~repro.model.baseline.DAC23Model` (the previous SOTA [4]); only
the training recipe changes:

- **AdvOnly** — limited 7nm data only.
- **SimpleMerge** — naive union of 130nm and 7nm data, one readout.
- **ParamShare** — shared extractor, one readout head per node [7].
- **PT-FT** — pretrain on 130nm, finetune on 7nm [6].

All four follow the paper's fixed training recipes (a set number of MSE
steps, final iterate kept).  The optional holdout machinery in
``_run_loop`` exists for the fairness ablation in EXPERIMENTS.md, where
every baseline is re-run *with* checkpoint selection.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..flow import DesignData
from ..model import DAC23Model
from ..nn import Adam, Tensor
from ..nn import functional as F
from ..obs import NullRunLogger, RunLogger
from .batching import sample_endpoints, sample_from_pool, split_by_node
from .selection import CheckpointKeeper, HoldoutSelector
from .trainer import TrainConfig


def _mse_step(model: DAC23Model, designs: Sequence[DesignData],
              optimizer: Adam, batch_endpoints: int,
              rng: np.random.Generator, grad_clip: float,
              head_of: Callable[[DesignData], int],
              selector: Optional[HoldoutSelector] = None) -> float:
    """One MSE step over ``designs``; returns the loss value."""
    total = None
    for design in designs:
        pool = selector.training_pool(design) if selector else None
        if pool is not None:
            subset = sample_from_pool(pool, batch_endpoints, rng)
        else:
            subset = sample_endpoints(design, batch_endpoints, rng)
        pred = model(design, subset, head=head_of(design))
        y = Tensor(design.labels[subset].reshape(-1, 1))
        term = F.mse_loss(pred, y)
        total = term if total is None else total + term
    optimizer.zero_grad()
    total.backward()
    optimizer.clip_grad_norm(grad_clip)
    optimizer.step()
    return total.item()


def _run_loop(model: DAC23Model, designs: Sequence[DesignData],
              steps: int, config: TrainConfig,
              head_of: Callable[[DesignData], int],
              rng: np.random.Generator,
              selector: Optional[HoldoutSelector] = None,
              logger: Optional[RunLogger] = None,
              stage: Optional[str] = None,
              step_offset: int = 0) -> List[float]:
    """Plain MSE loop with optional held-out checkpoint selection.

    The same validation protocol the paper's model uses (see
    :mod:`repro.train.selection`) is offered to every baseline, keeping
    the Table-2 comparison apples-to-apples.  ``logger`` streams the
    same telemetry schema the paper's trainer emits (loss, lr, step
    wall-time per step; validation events; the final-weights source),
    with ``stage``/``step_offset`` distinguishing multi-phase recipes
    such as PT-FT's pretrain/finetune loops.
    """
    logger = logger if logger is not None else NullRunLogger()
    optimizer = Adam(model.parameters(), lr=config.lr)
    keeper = CheckpointKeeper(model) if selector \
        and selector.val_designs else None
    losses = []
    for t in range(steps):
        t_start = time.perf_counter()
        losses.append(_mse_step(model, designs, optimizer,
                                config.batch_endpoints, rng,
                                config.grad_clip, head_of, selector))
        record = {"loss": losses[-1], "lr": float(optimizer.lr),
                  "step_seconds": time.perf_counter() - t_start}
        if stage is not None:
            record["stage"] = stage
        logger.log_step(step_offset + t, record)
        if keeper is not None and (t % config.eval_every == 0
                                   or t == steps - 1):
            score = selector.validate(
                lambda d, idx: model.predict(d, idx, head=head_of(d))
            )
            best = keeper.offer(score)
            logger.log_validation(step_offset + t, score, best)
    source = "final-iterate"
    if keeper is not None and keeper.best_state is not None:
        keeper.restore()
        source = "best-checkpoint"
    if stage is not None:
        logger.log_event("final_weights", source=source, stage=stage)
    else:
        logger.log_event("final_weights", source=source)
    return losses


def train_adv_only(designs: Sequence[DesignData], in_features: int,
                   config: Optional[TrainConfig] = None,
                   model_seed: int = 0,
                   use_selection: bool = False,
                   logger: Optional[RunLogger] = None) -> DAC23Model:
    """DAC23-AdvOnly: trained on the limited 7nm netlist data only.

    ``use_selection=True`` adds the same held-out checkpoint selection
    the paper's model uses (the fairness ablation in EXPERIMENTS.md);
    the default follows the paper's fixed recipe.
    """
    config = config or TrainConfig()
    _, target = split_by_node(designs)
    if not target:
        raise ValueError("AdvOnly needs 7nm training designs")
    model = DAC23Model(in_features, seed=model_seed)
    rng = np.random.default_rng(config.seed)
    selector = _selector_for(designs, config) if use_selection else None
    _run_loop(model, target, config.steps, config, lambda d: 0, rng,
              selector, logger=logger)
    return model


def train_simple_merge(designs: Sequence[DesignData], in_features: int,
                       config: Optional[TrainConfig] = None,
                       model_seed: int = 0,
                       use_selection: bool = False,
                       logger: Optional[RunLogger] = None) -> DAC23Model:
    """DAC23-SimpleMerge: naive union of both nodes, single readout.

    The arrival-time scales of the two nodes differ by an order of
    magnitude, so a single deterministic W cannot fit both — this is the
    strategy that goes *negative* R^2 in Table 2.
    """
    config = config or TrainConfig()
    model = DAC23Model(in_features, seed=model_seed)
    rng = np.random.default_rng(config.seed)
    selector = _selector_for(designs, config) if use_selection else None
    _run_loop(model, list(designs), config.steps, config, lambda d: 0,
              rng, selector, logger=logger)
    return model


def train_param_share(designs: Sequence[DesignData], in_features: int,
                      config: Optional[TrainConfig] = None,
                      model_seed: int = 0,
                      use_selection: bool = False,
                      logger: Optional[RunLogger] = None) -> DAC23Model:
    """DAC23-ParamShare: shared extractor, node-specific linear heads.

    Head 0 serves 130nm, head 1 serves 7nm; evaluation on 7nm test data
    uses head 1 (see :func:`predict_head_for_node`).
    """
    config = config or TrainConfig()
    model = DAC23Model(in_features, n_heads=2, seed=model_seed)
    rng = np.random.default_rng(config.seed)
    selector = _selector_for(designs, config) if use_selection else None
    _run_loop(model, list(designs), config.steps, config,
              lambda d: 0 if d.node == "130nm" else 1, rng, selector,
              logger=logger)
    return model


def train_pt_ft(designs: Sequence[DesignData], in_features: int,
                config: Optional[TrainConfig] = None,
                model_seed: int = 0,
                finetune_fraction: float = 0.5,
                use_selection: bool = False,
                logger: Optional[RunLogger] = None) -> DAC23Model:
    """DAC23-PT-FT: pretrain on 130nm, then finetune on 7nm.

    The finetuning stage runs ``finetune_fraction`` of the pretraining
    steps at the same learning rate, mirroring the much-fewer-steps
    recipe of [6].
    """
    config = config or TrainConfig()
    source, target = split_by_node(designs)
    if not source or not target:
        raise ValueError("PT-FT needs designs from both nodes")
    model = DAC23Model(in_features, seed=model_seed)
    rng = np.random.default_rng(config.seed)
    selector = _selector_for(designs, config) if use_selection else None
    _run_loop(model, source, config.steps, config, lambda d: 0, rng,
              logger=logger, stage="pretrain")
    ft_steps = max(1, int(config.steps * finetune_fraction))
    _run_loop(model, target, ft_steps, config, lambda d: 0, rng, selector,
              logger=logger, stage="finetune", step_offset=config.steps)
    return model


def _selector_for(designs: Sequence[DesignData],
                  config: TrainConfig) -> Optional[HoldoutSelector]:
    """The shared holdout selector, or None when selection is disabled."""
    if not 0.0 < config.holdout_fraction < 1.0:
        return None
    return HoldoutSelector(designs, fraction=config.holdout_fraction,
                           seed=config.seed)


def predict_head_for_node(model: DAC23Model, design: DesignData
                          ) -> np.ndarray:
    """Evaluate a (possibly multi-head) baseline on one design."""
    if len(model.heads) > 1:
        head = 0 if design.node == "130nm" else 1
    else:
        head = 0
    return model.predict(design, head=head)


#: Registry used by the Table-2 experiment driver.
BASELINE_STRATEGIES: Dict[str, Callable] = {
    "DAC23-AdvOnly": train_adv_only,
    "DAC23-SimpleMerge": train_simple_merge,
    "DAC23-ParamShare": train_param_share,
    "DAC23-PT-FT": train_pt_ft,
}


def measure_inference_runtime(predict: Callable[[DesignData], np.ndarray],
                              design: DesignData, repeats: int = 3) -> float:
    """Median wall-clock seconds to predict all of a design's endpoints."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        predict(design)
        times.append(time.perf_counter() - t0)
    return float(np.median(times))
