"""Fused cross-design batching: one graph sweep / one CNN pass per step.

The per-design training loop runs a full-graph GNN sweep and a separate
CNN forward for every design, every step — ~#designs more Python-level
autograd nodes than the math requires.  This module merges all training
designs into one **disjoint union** :class:`~repro.features.PinGraph`
(node rows offset per design, level ``k`` of the union = the level-``k``
rows of every constituent graph, so the sweep depth is the *max* over
designs instead of the sum) and stacks the sampled endpoints' masked
layout images, so one levelised sweep and one CNN forward serve every
design.  Per-design feature blocks are recovered by contiguous index
ranges for the ELBO / contrastive / CMD terms.

Message passing never crosses component boundaries (the union is
disjoint), each node keeps its own topological level, and row-wise ops
(Linear, CNN, disentangler) are independent across rows — so the fused
step is numerically equivalent to the per-design loop (validated to
1e-8 by ``tests/train/test_fused_equivalence.py``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..features import PinGraph
from ..flow import DesignData
from ..nn import Tensor, concatenate

__all__ = ["FusedDesignBatch", "merge_pin_graphs", "partition_counts",
           "slice_ranges"]


def merge_pin_graphs(graphs: Sequence[PinGraph]) -> PinGraph:
    """Disjoint union of several pin graphs as one :class:`PinGraph`.

    Node rows of graph ``i`` are shifted by the total node count of the
    preceding graphs; edges shift with them.  Level ``k`` of the merged
    graph is the concatenation of every constituent's level ``k`` (rows
    kept sorted), so the merged level count is the max over graphs and
    each node retains the level it had in its own graph — the property
    that makes the merged sweep order-equivalent to per-graph sweeps.
    """
    if not graphs:
        raise ValueError("need at least one graph to merge")
    offsets = np.cumsum([0] + [g.num_nodes for g in graphs])
    features = np.concatenate([g.features for g in graphs], axis=0)

    def _merged_edges(kind: str) -> np.ndarray:
        parts = [getattr(g, kind) + off
                 for g, off in zip(graphs, offsets)
                 if getattr(g, kind).shape[1]]
        if not parts:
            return np.zeros((2, 0), dtype=np.int64)
        return np.concatenate(parts, axis=1)

    depth = max(len(g.levels) for g in graphs)
    levels: List[np.ndarray] = []
    for k in range(depth):
        parts = [g.levels[k] + off for g, off in zip(graphs, offsets)
                 if k < len(g.levels)]
        levels.append(np.sort(np.concatenate(parts)))

    return PinGraph(
        features=features,
        net_edges=_merged_edges("net_edges"),
        cell_edges=_merged_edges("cell_edges"),
        levels=levels,
        row_of_pin={},  # identity is per-design; not meaningful merged
        endpoint_rows=np.concatenate(
            [g.endpoint_rows + off for g, off in zip(graphs, offsets)]
        ),
        endpoint_names=[name for g in graphs for name in g.endpoint_names],
    )


def slice_ranges(counts: Sequence[int]) -> List[Tuple[int, int]]:
    """``[(start, stop)]`` ranges of consecutive blocks of given sizes."""
    bounds = np.cumsum([0] + list(counts))
    return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]


def partition_counts(total: int, parts: int) -> List[int]:
    """Sizes of ``parts`` balanced contiguous blocks covering ``total``.

    The first ``total % parts`` blocks get one extra element
    (``numpy.array_split`` semantics), so sizes differ by at most one
    and concatenating the blocks in order reproduces the original
    sequence.  This is the shard boundary of the data-parallel trainer:
    each worker owns one contiguous block of the source designs and one
    of the target designs, preserving the global source-then-target
    design order within its shard.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


class FusedDesignBatch:
    """The merged training batch shared by every fused step.

    Built once per trainer: the union graph (and therefore its memoised
    level plan) is static across steps; only the endpoint subsets change.

    Parameters
    ----------
    designs:
        Training designs in a fixed order (the trainer uses source
        designs first, then target designs, so node groups are
        contiguous in the merged feature matrix).
    """

    def __init__(self, designs: Sequence[DesignData]) -> None:
        self.designs = list(designs)
        self.graph = merge_pin_graphs([d.graph for d in self.designs])
        self._endpoint_offsets = np.cumsum(
            [0] + [d.num_endpoints for d in self.designs]
        )

    # ------------------------------------------------------------------
    def merged_endpoint_rows(self,
                             subsets: Sequence[np.ndarray]) -> np.ndarray:
        """Merged-graph node rows for per-design endpoint subsets."""
        return np.concatenate([
            self.graph.endpoint_rows[off + np.asarray(subset)]
            for off, subset in zip(self._endpoint_offsets, subsets)
        ])

    def stacked_path_images(self,
                            subsets: Sequence[np.ndarray]) -> np.ndarray:
        """``(K_total, C, R, R)`` masked images for the sampled paths."""
        return np.concatenate([
            design.path_image_stack()[subset]
            for design, subset in zip(self.designs, subsets)
        ])

    def path_features(self, model, subsets: Sequence[np.ndarray]
                      ) -> Tuple[Tensor, Tensor, Tensor]:
        """Fused ``(u, u_n, u_d)`` for all designs' sampled paths.

        One GNN sweep over the union graph, one CNN forward over the
        stacked images, one disentangler pass; rows follow the design
        order of the batch, so callers recover per-design blocks via
        :func:`slice_ranges` over the subset sizes.
        """
        return self.path_features_from(
            model,
            self.merged_endpoint_rows(subsets),
            self.stacked_path_images(subsets),
        )

    def path_features_from(self, model, rows: np.ndarray, images
                           ) -> Tuple[Tensor, Tensor, Tensor]:
        """:meth:`path_features` from pre-gathered rows/images.

        The trainer prepares ``rows``/``images`` as named step inputs
        (so a compiled trace can rebind them each replay) and hands
        them through here; ``images`` may be a raw array or an already
        wrapped :class:`~repro.nn.Tensor`.
        """
        u_graph = model.extractor.gnn(self.graph, rows)
        u_layout = model.extractor.cnn(
            images if isinstance(images, Tensor) else Tensor(images)
        )
        u = concatenate([u_graph, u_layout], axis=1)
        u_n, u_d = model.disentangler(u)
        return u, u_n, u_d
