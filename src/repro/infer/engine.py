"""Forward-only inference engine for the timing predictor.

Serving a trained :class:`~repro.model.TimingPredictor` through its
training-oriented ``predict()`` pays for machinery inference never
uses: the autograd graph (backward closures allocated and immediately
discarded), one full GNN sweep + CNN forward per call even when the
model has not changed, and a separate prior-MLP forward per design.
:class:`InferenceEngine` removes all three:

- every forward runs inside :func:`repro.nn.no_grad`, so no graph is
  recorded (bit-identical values, no bookkeeping);
- extractor outputs are memoised per design in a
  :class:`~repro.infer.cache.FeatureCache` keyed by the model's weight
  digest, so repeated queries — the serving pattern — skip the GNN and
  CNN entirely and reduce to two small matmuls;
- ``predict_many`` merges the queried designs into one disjoint-union
  graph (reusing :func:`repro.train.fused.merge_pin_graphs`) for a
  single levelised sweep + one stacked CNN forward, and hoists the
  transductive population-prior update out of the per-design loop into
  one batched prior-MLP forward;
- the CNN runs through the forward-only numpy kernels of
  :mod:`repro.infer.kernels`, and the *weight-independent* parts of a
  cold extraction — the first conv layer's im2col columns and the
  fused batch structure, both functions of the immutable design data
  alone — are memoised per design/design-set, so they survive weight
  updates that invalidate the feature cache.

Numerics are the training path's: every prediction matches
``TimingPredictor.predict`` to ~1e-10 (asserted by
``tests/infer/test_engine.py`` and ``benchmarks/bench_inference.py``).

The engine is **thread-safe and resident-process-safe** (the contract
``repro.serve`` builds on, DESIGN.md §13):

- every public entry point enters :func:`repro.nn.no_grad` itself —
  the flag is thread-local, so a server worker thread calling in from
  a fresh thread must not depend on the constructing thread's scope;
- the weight-independent structure caches are bounded LRUs
  (``max_struct_entries`` / ``max_column_entries``), so an open-ended
  stream of distinct request mixes cannot grow memory without limit;
- predictions take a shared read lock and :meth:`swap_model` takes the
  write side, so a hot-reload can never interleave with an in-flight
  forward (requests see the old weights or the new, never a mix);
- the digest a cold extraction was computed under is re-checked before
  the feature-cache store, so a weight edit that bypasses
  ``swap_model`` can still never publish stale features.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..flow import DesignData
from ..model import TimingPredictor
from ..nn import Tensor, no_grad
from ..train.fused import FusedDesignBatch, slice_ranges
from ..util import RWLock, timed
from .cache import BoundedLRU, FeatureCache, FeatureTriple, weight_digest
from .kernels import ColumnsTriple, cnn_forward, image_columns

__all__ = ["InferenceEngine", "Prediction"]


class Prediction:
    """One design's serving result (arrays, not tensors)."""

    __slots__ = ("name", "node", "mean", "std", "num_endpoints")

    def __init__(self, name: str, node: str, mean: np.ndarray,
                 std: Optional[np.ndarray] = None) -> None:
        self.name = name
        self.node = node
        self.mean = mean
        self.std = std
        self.num_endpoints = int(mean.shape[0])

    def __repr__(self) -> str:
        flag = ", std" if self.std is not None else ""
        return (f"Prediction({self.name}@{self.node}, "
                f"endpoints={self.num_endpoints}{flag})")


class InferenceEngine:
    """Batched, cached, no-grad serving front-end for one model.

    Parameters
    ----------
    model:
        A trained predictor whose node priors have been finalised
        (``OursTrainer.fit`` does this; so does
        :func:`repro.infer.load_predictor`).
    use_cache:
        Memoise per-design extractor outputs keyed by the weight
        digest.  Disable for strictly stateless serving.
    transductive:
        Fold each queried design's own (unlabeled) paths into the node
        population before reading the prior — Equation (7)'s "all the
        timing paths on the target node" (matches ``predict()``'s
        default).
    cache_columns:
        Additionally memoise *weight-independent* preprocessing per
        design: the CNN's first-layer im2col columns and (for
        ``predict_many``) the union-graph batch structure.  Unlike the
        feature cache these survive model updates — the inputs they
        derive from are immutable flow outputs — but the columns are
        ~9x the image stack in memory, so disable when serving a very
        large design population from a small footprint.
    max_struct_entries, max_column_entries:
        LRU bounds on the two weight-independent caches.  A resident
        process serving many distinct design *sets* would otherwise
        keep one full union-graph batch per distinct request mix
        forever; evictions are counted in :meth:`stats`.
    cache_max_entries:
        Optional LRU bound on the feature cache itself (None keeps the
        historical one-entry-per-design behaviour).
    """

    def __init__(self, model: TimingPredictor, use_cache: bool = True,
                 transductive: bool = True,
                 cache_columns: bool = True,
                 max_struct_entries: Optional[int] = 8,
                 max_column_entries: Optional[int] = 64,
                 cache_max_entries: Optional[int] = None) -> None:
        self.model = model
        self.cache: Optional[FeatureCache] = \
            FeatureCache(max_entries=cache_max_entries) \
            if use_cache else None
        self.transductive = transductive
        self.cache_columns = cache_columns
        #: (name, node) -> first-layer im2col columns of the design's
        #: path images (weight-independent; LRU-bounded).
        self._image_cols: BoundedLRU = BoundedLRU(max_column_entries)
        #: design-set key -> (FusedDesignBatch, subsets, images, cols);
        #: the union graph and stacked images are weight-independent.
        self._structs: BoundedLRU = BoundedLRU(max_struct_entries)
        #: Shared by predictions (read) and swap_model (write): a
        #: hot-reload is mutually exclusive with in-flight forwards.
        self._rw = RWLock()

    # ------------------------------------------------------------------
    # Feature extraction (the cached, expensive half)
    # ------------------------------------------------------------------
    def _digest(self) -> str:
        with timed("infer.digest"):
            return weight_digest(self.model)

    def _columns_for(self, design: DesignData,
                     images: np.ndarray) -> Optional[ColumnsTriple]:
        """Cached first-layer columns for one design (None = uncached)."""
        if not self.cache_columns:
            return None
        key = (design.name, design.node)
        cols = self._image_cols.get(key)
        if cols is None:
            conv1 = self.model.extractor.cnn.conv1
            cols = image_columns(images, conv1.weight.data,
                                 conv1.stride, conv1.padding)
            self._image_cols.put(key, cols)
        return cols

    def _disentangle(self, u_graph: np.ndarray, u_layout: np.ndarray
                     ) -> FeatureTriple:
        """Concatenate the two modalities and split ``u -> (u_n, u_d)``."""
        u = np.concatenate([u_graph, u_layout], axis=1)
        with no_grad():
            u_n, u_d = self.model.disentangler(Tensor(u))
        return u, u_n.data, u_d.data

    def features(self, design: DesignData) -> FeatureTriple:
        """``(u, u_n, u_d)`` arrays over the design's full endpoint set."""
        with self._rw.read(), no_grad():
            digest = self._digest() if self.cache is not None else ""
            if self.cache is not None:
                hit = self.cache.lookup(design, digest)
                if hit is not None:
                    return hit
            model = self.model
            with timed("infer.features"):
                images = design.path_image_stack()
                u_graph = model.extractor.gnn(
                    design.graph, design.graph.endpoint_rows).data
                u_layout = cnn_forward(
                    model.extractor.cnn,
                    images, cols=self._columns_for(design, images))
                triple = self._disentangle(u_graph, u_layout)
            # Store only if the weights are still the ones the triple
            # was computed under: a concurrent weight edit that slipped
            # past swap_model must not publish stale features.
            if self.cache is not None and self._digest() == digest:
                self.cache.store(design, digest, triple)
            return triple

    def _batch_struct(self, missed: Sequence[DesignData]) -> tuple:
        """Weight-independent batch structure for a set of designs:
        union graph, full endpoint subsets, stacked images, columns."""
        key = tuple((d.name, d.node) for d in missed)
        struct = self._structs.get(key)
        if struct is None:
            batch = FusedDesignBatch(list(missed))
            subsets = [np.arange(d.num_endpoints) for d in missed]
            images = batch.stacked_path_images(subsets)
            cols = None
            if self.cache_columns:
                conv1 = self.model.extractor.cnn.conv1
                cols = image_columns(images, conv1.weight.data,
                                     conv1.stride, conv1.padding)
            struct = (batch, subsets, images, cols)
            self._structs.put(key, struct)
        return struct

    def _features_many(self, designs: Sequence[DesignData]
                       ) -> List[FeatureTriple]:
        """Per-design triples, extracting every cache miss in ONE fused
        forward (union graph sweep + stacked CNN)."""
        digest = self._digest() if self.cache is not None else ""
        triples: List[Optional[FeatureTriple]] = [None] * len(designs)
        misses: List[int] = []
        for i, design in enumerate(designs):
            hit = self.cache.lookup(design, digest) \
                if self.cache is not None else None
            if hit is not None:
                triples[i] = hit
            else:
                misses.append(i)
        if misses:
            missed = [designs[i] for i in misses]
            model = self.model
            with timed("infer.features"):
                batch, subsets, images, cols = self._batch_struct(missed)
                rows = batch.merged_endpoint_rows(subsets)
                u_graph = model.extractor.gnn(batch.graph, rows).data
                u_layout = cnn_forward(model.extractor.cnn, images,
                                       cols=cols)
                u, u_n, u_d = self._disentangle(u_graph, u_layout)
            # One digest recompute per coalesced batch: store the whole
            # batch's triples only if the weights did not change under
            # us while the fused forward ran.
            storable = self.cache is not None and self._digest() == digest
            for (lo, hi), i in zip(
                    slice_ranges([len(s) for s in subsets]), misses):
                triple = (u[lo:hi], u_n[lo:hi], u_d[lo:hi])
                triples[i] = triple
                if storable:
                    self.cache.store(designs[i], digest, triple)
        return triples  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Priors (the cheap, per-query half)
    # ------------------------------------------------------------------
    def _batched_priors(self, designs: Sequence[DesignData],
                        triples: Sequence[FeatureTriple]
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """``(D, m)`` prior mu / log_var rows, one MLP forward for all.

        The transductive update (folding each design's own paths into
        its node population) happens in plain numpy per design — only
        the amortisation MLPs, the part worth batching, run once over
        the stacked ``u_tilde`` rows.
        """
        model = self.model
        rows = []
        for design, (_, u_n, u_d) in zip(designs, triples):
            model._prior_weights(design.node)  # raises if not finalised
            if self.transductive:
                rows.append(model._prior_feature(design.node,
                                                 extra_un=u_n,
                                                 extra_ud=u_d))
            else:
                rows.append(model._prior_feature(design.node))
        with timed("infer.prior"), no_grad():
            mu, log_var = model.readout.weight_distribution(
                Tensor(np.concatenate(rows, axis=0)))
        return mu.data, log_var.data

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _readout(self, u: np.ndarray, mu: np.ndarray,
                 log_var: np.ndarray, mc_samples: int,
                 rng: Optional[np.random.Generator], seed: int,
                 with_std: bool) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Apply the prior readout to features (vectorised MC draws)."""
        model = self.model
        if mc_samples > 0:
            draw = rng if rng is not None else np.random.default_rng(seed)
            preds = model._sample_prior_predictions(
                u, mu, log_var, mc_samples, draw)
            std = preds.std(axis=0) if with_std else None
            return preds.mean(axis=0), std
        mean = u @ mu[0] + float(model.readout.bias.data[0])
        return mean, None

    def predict(self, design: DesignData,
                endpoint_subset: Optional[np.ndarray] = None,
                mc_samples: int = 0,
                rng: Optional[np.random.Generator] = None,
                seed: int = 0) -> np.ndarray:
        """Arrival-time predictions, numerically matching
        ``TimingPredictor.predict`` — minus the autograd machinery, and
        with warm calls skipping the GNN/CNN via the feature cache."""
        with self._rw.read(), no_grad(), timed("infer.predict"):
            u, u_n, u_d = self.features(design)
            if endpoint_subset is not None:
                idx = np.asarray(endpoint_subset)
                u, u_n, u_d = u[idx], u_n[idx], u_d[idx]
            mu, log_var = self.model._design_prior(
                design, u_n, u_d, self.transductive)
            mean, _ = self._readout(u, mu, log_var, mc_samples, rng,
                                    seed, with_std=False)
        return mean

    def predict_with_uncertainty(self, design: DesignData,
                                 endpoint_subset: Optional[np.ndarray] = None,
                                 mc_samples: int = 16,
                                 rng: Optional[np.random.Generator] = None,
                                 seed: int = 0
                                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Predictive mean and std per endpoint (cached features)."""
        with self._rw.read(), no_grad(), timed("infer.predict"):
            u, u_n, u_d = self.features(design)
            if endpoint_subset is not None:
                idx = np.asarray(endpoint_subset)
                u, u_n, u_d = u[idx], u_n[idx], u_d[idx]
            mu, log_var = self.model._design_prior(
                design, u_n, u_d, transductive=True)
            draw = rng if rng is not None else np.random.default_rng(seed)
            preds = self.model._sample_prior_predictions(
                u, mu, log_var, mc_samples, draw)
        return preds.mean(axis=0), preds.std(axis=0)

    def predict_many(self, designs: Sequence[DesignData],
                     mc_samples: int = 0,
                     with_uncertainty: bool = False,
                     rng: Optional[np.random.Generator] = None,
                     seed: int = 0) -> Dict[str, Prediction]:
        """Fused multi-design prediction: one graph sweep and one CNN
        forward for every cache-missing design, one batched prior-MLP
        forward for all, then per-design readouts.

        When ``rng`` is None each design draws from a fresh
        ``default_rng(seed)``, so results match per-design
        ``predict(..., seed=seed)`` calls exactly; pass an explicit
        generator to consume one stream across designs instead.
        """
        if with_uncertainty and mc_samples <= 0:
            raise ValueError("uncertainty needs mc_samples > 0")
        with self._rw.read(), no_grad(), timed("infer.predict_many"):
            triples = self._features_many(designs)
            mu_all, lv_all = self._batched_priors(designs, triples)
            out: Dict[str, Prediction] = {}
            for i, (design, (u, _, _)) in enumerate(zip(designs, triples)):
                draw = rng if rng is not None else \
                    np.random.default_rng(seed)
                mean, std = self._readout(
                    u, mu_all[i:i + 1], lv_all[i:i + 1], mc_samples,
                    draw, seed, with_std=with_uncertainty)
                out[design.name] = Prediction(design.name, design.node,
                                              mean, std)
        return out

    # ------------------------------------------------------------------
    # Hot reload
    # ------------------------------------------------------------------
    def swap_model(self, model: TimingPredictor) -> None:
        """Atomically replace the served predictor.

        Takes the write side of the engine lock, so the swap waits for
        in-flight predictions and no prediction can start mid-swap: a
        request sees the old weights or the new, never a mixture.  The
        feature cache needs no flush — its entries are digest-keyed, so
        the new weights simply miss.  The weight-independent structure
        caches survive unless the new model's first conv layer has a
        different geometry (then the cached im2col columns are shaped
        for the wrong kernel and are dropped).
        """
        old = self.model.extractor.cnn.conv1
        new = model.extractor.cnn.conv1
        compatible = (old.weight.data.shape == new.weight.data.shape
                      and old.stride == new.stride
                      and old.padding == new.padding)
        with self._rw.write():
            self.model = model
            if not compatible:
                self._image_cols.clear()
                self._structs.clear()

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/entry counters (zeros when the cache is disabled)."""
        if self.cache is None:
            return {"hits": 0, "misses": 0, "entries": 0, "evictions": 0}
        return self.cache.stats()

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Entry/eviction counters for every cache tier (for /stats)."""
        return {
            "features": self.cache_stats(),
            "structs": self._structs.stats(),
            "image_columns": self._image_cols.stats(),
        }
