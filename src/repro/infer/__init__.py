"""Fast forward-only inference (serving) for the timing predictor.

See DESIGN.md §9 "Inference architecture":

- :class:`InferenceEngine` — no-grad, cached, fused multi-design
  prediction (``repro predict`` is its CLI surface);
- :class:`FeatureCache` / :func:`weight_digest` — per-design extractor
  memoisation invalidated automatically on any parameter change;
- :func:`save_predictor` / :func:`load_predictor` — serving
  checkpoints carrying weights *and* the finalised node priors.
"""

from .cache import BoundedLRU, FeatureCache, named_tensors, weight_digest
from .engine import InferenceEngine, Prediction
from .serialization import load_predictor, save_predictor

__all__ = [
    "BoundedLRU",
    "FeatureCache",
    "InferenceEngine",
    "Prediction",
    "load_predictor",
    "named_tensors",
    "save_predictor",
    "weight_digest",
]
