"""Forward-only numpy kernels for the layout CNN (the serving path).

The CNN dominates a cold prediction, and a third of its wall-clock is
work a forward-only pass does not need:

- the im2col gather of the *first* conv layer depends only on the
  design's (immutable) masked path images, never on the weights — so
  the engine precomputes it once per design (:func:`image_columns`)
  and every later forward starts at the GEMM (the same design-keyed
  memoisation idiom as ``DesignData.path_image_stack``);
- max pooling needs no argmax bookkeeping — a running elementwise
  maximum over the kernel-offset slices gives the window maxima with a
  fraction of the memory traffic;
- activations apply in place on arrays the kernel just allocated.

Every operation is numerically *identical* to the autograd layers'
forward (same GEMM shapes, same operation order): the engine's
equivalence tests compare against ``TimingPredictor.predict`` at
bit-exact / 1e-10 tolerance.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn.functional import _im2col

__all__ = ["cnn_forward", "conv_forward", "image_columns",
           "max_pool_forward"]

#: ``(cols, oh, ow)`` as produced by ``repro.nn.functional._im2col``.
ColumnsTriple = Tuple[np.ndarray, int, int]


def max_pool_forward(x: np.ndarray, kernel: int = 2,
                     stride: Optional[int] = None) -> np.ndarray:
    """Window maxima of NCHW ``x`` (values of ``F.max_pool2d``)."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    out = None
    for i in range(kernel):
        for j in range(kernel):
            part = x[:, :, i:i + stride * oh:stride,
                     j:j + stride * ow:stride]
            if out is None:
                out = part.copy()
            else:
                np.maximum(out, part, out=out)
    return out


def image_columns(images: np.ndarray, weight: np.ndarray,
                  stride: int = 1, padding: int = 1) -> ColumnsTriple:
    """First-layer im2col columns for a stack of path images.

    Weight-independent (only the kernel *shape* matters), so the result
    can be cached per design and reused across any number of model
    updates.
    """
    kh, kw = weight.shape[2], weight.shape[3]
    return _im2col(images, (kh, kw), stride, padding)


def conv_forward(x: Optional[np.ndarray], weight: np.ndarray,
                 bias: Optional[np.ndarray], stride: int = 1,
                 padding: int = 0,
                 cols: Optional[ColumnsTriple] = None) -> np.ndarray:
    """Convolution forward, optionally starting from precomputed
    columns (mirrors ``F.conv2d``'s data path operation for operation)."""
    c_out = weight.shape[0]
    if cols is None:
        cols_mat, oh, ow = _im2col(x, weight.shape[2:], stride, padding)
    else:
        cols_mat, oh, ow = cols
    out = np.matmul(weight.reshape(c_out, -1), cols_mat)
    if bias is not None:
        out += bias[None, :, None]
    return out.reshape(cols_mat.shape[0], c_out, oh, ow)


def cnn_forward(cnn, images: Optional[np.ndarray],
                cols: Optional[ColumnsTriple] = None) -> np.ndarray:
    """``LayoutCNN.forward`` in plain numpy: images -> path embeddings.

    Parameters
    ----------
    cnn:
        A :class:`repro.model.cnn.LayoutCNN` providing the weights.
    images:
        ``(K, C, R, R)`` masked path images; may be None when ``cols``
        carries the first layer's precomputed columns.
    cols:
        Optional cached :func:`image_columns` of ``images``.
    """
    if cols is None:
        cols = image_columns(images, cnn.conv1.weight.data,
                             cnn.conv1.stride, cnn.conv1.padding)
    h = conv_forward(None, cnn.conv1.weight.data, cnn.conv1.bias.data,
                     cols=cols)
    np.maximum(h, 0.0, out=h)
    h = max_pool_forward(h, 2)
    h = conv_forward(h, cnn.conv2.weight.data, cnn.conv2.bias.data,
                     stride=cnn.conv2.stride, padding=cnn.conv2.padding)
    np.maximum(h, 0.0, out=h)
    h = max_pool_forward(h, 2)
    h = conv_forward(h, cnn.conv3.weight.data, cnn.conv3.bias.data,
                     stride=cnn.conv3.stride, padding=cnn.conv3.padding)
    np.maximum(h, 0.0, out=h)
    h = h.mean(axis=(2, 3))
    return h @ cnn.project.weight.data + cnn.project.bias.data
