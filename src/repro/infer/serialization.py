"""Checkpointing a *trained* predictor for serving.

``repro.nn.serialization`` round-trips a module's trainable parameters,
but a deployable :class:`~repro.model.TimingPredictor` is more than its
weights: inference (Equation 7) reads the finalised node-population
statistics and the per-node prior Gaussians that
``finalize_node_priors`` caches on the instance.  This module persists
the whole serving state — constructor config, every tensor (including
ablation-frozen ones), population sums/counts, node priors — in one
``.npz`` with no pickled objects, so ``repro train --save-model`` and
``repro predict --model`` compose into a train-once/serve-many flow.

Persistence is crash-safe: :func:`save_predictor` stages the archive
and renames it into place (see
:func:`repro.nn.serialization.atomic_savez`), so a crash mid-save can
never leave a truncated model file, and the checkpoint lands at
*exactly* the requested path — numpy's silent ``.npz`` suffix append
(saving to ``model`` producing ``model.npz``) no longer applies.
:func:`load_predictor` stages every archive entry and validates the
full set *before* touching a model, raising one typed
:class:`~repro.nn.CheckpointError` naming the offending key; a
checkpoint that fails mid-load cannot yield a half-mutated predictor.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..model import TimingPredictor
from ..nn.serialization import CheckpointError, atomic_savez
from .cache import named_tensors

__all__ = ["CheckpointError", "load_predictor", "save_predictor"]

_FORMAT_VERSION = 1


def save_predictor(model: TimingPredictor,
                   path: Union[str, Path]) -> Path:
    """Write a trained predictor (weights + finalised priors) to ``path``.

    Atomic (temp file + ``os.replace``) and suffix-exact: the file
    lands at ``path`` verbatim.  Returns the written path.

    Raises
    ------
    RuntimeError
        If the model's node priors were never finalised — an untrained
        predictor cannot serve Equation (7) and must not be deployable.
    """
    population = getattr(model, "_population", None)
    priors = getattr(model, "_node_priors", None)
    if not population or not priors:
        raise RuntimeError(
            "predictor has no finalised node priors; train it (or call "
            "finalize_node_priors) before saving a serving checkpoint"
        )
    arrays: Dict[str, np.ndarray] = {
        "meta": np.array(json.dumps({
            "format_version": _FORMAT_VERSION,
            "init_config": model.init_config,
        })),
        "pop::ud_sum": population["ud_sum"],
        "pop::ud_count": np.array(population["ud_count"]),
    }
    for name, tensor in named_tensors(model):
        arrays[f"param::{name}"] = tensor.data
    for node, value in population["un_sum"].items():
        arrays[f"pop::un_sum::{node}"] = value
        arrays[f"pop::un_count::{node}"] = \
            np.array(population["un_count"][node])
    for node, (mu, log_var) in priors.items():
        arrays[f"prior::mu::{node}"] = mu
        arrays[f"prior::log_var::{node}"] = log_var
    return atomic_savez(path, arrays)


def _resolve_checkpoint_path(path: Union[str, Path]) -> Path:
    """``path``, or its legacy ``.npz``-suffixed sibling if only that
    exists (checkpoints written before the atomic writer pinned the
    exact name)."""
    path = Path(path)
    if not path.is_file():
        legacy = path.with_name(path.name + ".npz")
        if legacy.is_file():
            return legacy
    return path


def load_predictor(path: Union[str, Path]) -> TimingPredictor:
    """Rebuild a serving-ready predictor saved by :func:`save_predictor`.

    Raises
    ------
    CheckpointError
        If the archive is unreadable, from an unsupported version, or
        missing/mismatching any required key — diagnosed *before* the
        returned model exists, so no half-loaded predictor can escape.
    """
    path = _resolve_checkpoint_path(path)
    try:
        with np.load(str(path), allow_pickle=False) as archive:
            staged = {key: archive[key] for key in archive.files}
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"unreadable predictor checkpoint {path}: {exc}") from exc

    def require(key: str) -> np.ndarray:
        if key not in staged:
            raise CheckpointError(
                f"predictor checkpoint {path} missing key {key!r}")
        return staged[key]

    try:
        meta = json.loads(str(require("meta")))
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"predictor checkpoint {path} has corrupt 'meta' JSON: "
            f"{exc}") from exc
    if meta.get("format_version") != _FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported predictor checkpoint version "
            f"{meta.get('format_version')!r} in {path}"
        )

    # Stage the serving state fully before any model is built, so a
    # missing key can never abandon a partially populated predictor.
    population = {
        "ud_sum": require("pop::ud_sum"),
        "ud_count": float(require("pop::ud_count")),
        "un_sum": {}, "un_count": {},
    }
    priors = {}
    for key in sorted(staged):
        if key.startswith("pop::un_sum::"):
            node = key[len("pop::un_sum::"):]
            population["un_sum"][node] = staged[key]
            population["un_count"][node] = \
                float(require(f"pop::un_count::{node}"))
        elif key.startswith("prior::mu::"):
            node = key[len("prior::mu::"):]
            priors[node] = (staged[key],
                            require(f"prior::log_var::{node}"))

    model = TimingPredictor(**meta["init_config"])
    tensors = dict(named_tensors(model))
    for key in sorted(staged):
        if not key.startswith("param::"):
            continue
        name = key[len("param::"):]
        if name not in tensors:
            raise CheckpointError(
                f"predictor checkpoint {path} parameter {name!r} does "
                "not exist in the rebuilt model")
        value = staged[key]
        if tensors[name].data.shape != value.shape:
            raise CheckpointError(
                f"predictor checkpoint {path} key {name!r} has shape "
                f"{value.shape}, model expects {tensors[name].data.shape}"
            )
    for key, value in staged.items():
        if key.startswith("param::"):
            # repro-check: disable=tensor-data-mutation -- checkpoint load writes leaf tensors before any graph exists
            tensors[key[len("param::"):]].data[...] = value
    model._population = population
    model._node_priors = priors
    return model
