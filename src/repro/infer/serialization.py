"""Checkpointing a *trained* predictor for serving.

``repro.nn.serialization`` round-trips a module's trainable parameters,
but a deployable :class:`~repro.model.TimingPredictor` is more than its
weights: inference (Equation 7) reads the finalised node-population
statistics and the per-node prior Gaussians that
``finalize_node_priors`` caches on the instance.  This module persists
the whole serving state — constructor config, every tensor (including
ablation-frozen ones), population sums/counts, node priors — in one
``.npz`` with no pickled objects, so ``repro train --save-model`` and
``repro predict --model`` compose into a train-once/serve-many flow.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..model import TimingPredictor
from .cache import named_tensors

__all__ = ["load_predictor", "save_predictor"]

_FORMAT_VERSION = 1


def save_predictor(model: TimingPredictor,
                   path: Union[str, Path]) -> None:
    """Write a trained predictor (weights + finalised priors) to ``path``.

    Raises
    ------
    RuntimeError
        If the model's node priors were never finalised — an untrained
        predictor cannot serve Equation (7) and must not be deployable.
    """
    population = getattr(model, "_population", None)
    priors = getattr(model, "_node_priors", None)
    if not population or not priors:
        raise RuntimeError(
            "predictor has no finalised node priors; train it (or call "
            "finalize_node_priors) before saving a serving checkpoint"
        )
    arrays: Dict[str, np.ndarray] = {
        "meta": np.array(json.dumps({
            "format_version": _FORMAT_VERSION,
            "init_config": model.init_config,
        })),
        "pop::ud_sum": population["ud_sum"],
        "pop::ud_count": np.array(population["ud_count"]),
    }
    for name, tensor in named_tensors(model):
        arrays[f"param::{name}"] = tensor.data
    for node, value in population["un_sum"].items():
        arrays[f"pop::un_sum::{node}"] = value
        arrays[f"pop::un_count::{node}"] = \
            np.array(population["un_count"][node])
    for node, (mu, log_var) in priors.items():
        arrays[f"prior::mu::{node}"] = mu
        arrays[f"prior::log_var::{node}"] = log_var
    np.savez_compressed(str(path), **arrays)


def load_predictor(path: Union[str, Path]) -> TimingPredictor:
    """Rebuild a serving-ready predictor saved by :func:`save_predictor`."""
    with np.load(str(path), allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported predictor checkpoint version "
                f"{meta.get('format_version')!r} in {path}"
            )
        model = TimingPredictor(**meta["init_config"])
        tensors = dict(named_tensors(model))
        for key in archive.files:
            if not key.startswith("param::"):
                continue
            name = key[len("param::"):]
            if name not in tensors:
                raise KeyError(f"checkpoint parameter {name!r} does not "
                               "exist in the rebuilt model")
            value = archive[key]
            if tensors[name].data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{tensors[name].data.shape} vs {value.shape}"
                )
            # repro-check: disable=tensor-data-mutation -- checkpoint load writes leaf tensors before any graph exists
            tensors[name].data[...] = value
        population = {
            "ud_sum": archive["pop::ud_sum"],
            "ud_count": float(archive["pop::ud_count"]),
            "un_sum": {}, "un_count": {},
        }
        priors = {}
        for key in archive.files:
            if key.startswith("pop::un_sum::"):
                node = key[len("pop::un_sum::"):]
                population["un_sum"][node] = archive[key]
                population["un_count"][node] = \
                    float(archive[f"pop::un_count::{node}"])
            elif key.startswith("prior::mu::"):
                node = key[len("prior::mu::"):]
                priors[node] = (archive[key],
                                archive[f"prior::log_var::{node}"])
    model._population = population
    model._node_priors = priors
    return model
