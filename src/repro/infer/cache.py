"""Per-design feature cache keyed by a digest of the model's weights.

The serving pattern is *repeated queries against a fixed model*: the
expensive part of a prediction — the GNN sweep over the whole design
graph and the CNN over every path image — produces the same
``(u, u_n, u_d)`` triple on every call until a parameter changes.
:class:`FeatureCache` memoises that triple per design, keyed by
:func:`weight_digest`, a stable hash over **every** parameter tensor of
the model.  Any weight update — an optimizer step, ``load_state_dict``,
an ablation preset writing ``.data`` directly — changes the digest, so
stale features can never be served; no explicit invalidation hook is
needed (or trusted).

The digest walks *all* tensor attributes, not just trainable ones:
ablations freeze parameters by flipping ``requires_grad`` off, and a
later ``.data`` write to a frozen tensor must still invalidate.
Digesting the full parameter set costs one pass over ~10^5 floats
(tens of microseconds) — noise next to the graph sweep it saves.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..nn import Module, Tensor

__all__ = ["FeatureCache", "named_tensors", "weight_digest"]

#: Cached value: ``(u, u_n, u_d)`` numpy arrays over a design's full
#: endpoint set, detached from any autograd graph.
FeatureTriple = Tuple[np.ndarray, np.ndarray, np.ndarray]


def named_tensors(module: Module, prefix: str = ""
                  ) -> Iterator[Tuple[str, Tensor]]:
    """Yield every tensor attribute of the module tree, frozen or not.

    Like :meth:`Module.named_parameters` but without the
    ``requires_grad`` filter, so frozen (ablation-pinned) tensors are
    still part of the digest and of saved checkpoints.
    """
    for name, value in vars(module).items():
        full = f"{prefix}{name}"
        if isinstance(value, Tensor):
            yield full, value
        elif isinstance(value, Module):
            yield from named_tensors(value, prefix=f"{full}.")
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                if isinstance(item, Module):
                    yield from named_tensors(item, prefix=f"{full}.{i}.")
                elif isinstance(item, Tensor):
                    yield f"{full}.{i}", item


def weight_digest(model: Module) -> str:
    """Stable hex digest of every tensor in the module tree.

    Covers names, shapes and raw float64 bytes, so any in-place or
    wholesale parameter change produces a different digest.
    """
    h = hashlib.blake2b(digest_size=16)
    for name, tensor in named_tensors(model):
        h.update(name.encode("utf-8"))
        data = np.ascontiguousarray(tensor.data)
        h.update(str(data.shape).encode("ascii"))
        h.update(data.tobytes())
    return h.hexdigest()


class FeatureCache:
    """Per-design ``(u, u_n, u_d)`` store, one entry per design.

    An entry is valid only for the digest it was stored under; a lookup
    with a different digest misses (and the subsequent store replaces
    the stale entry, so memory stays bounded at one triple per design).
    """

    def __init__(self) -> None:
        self._store: Dict[Tuple[str, str],
                          Tuple[str, FeatureTriple]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(design) -> Tuple[str, str]:
        return (design.name, design.node)

    def lookup(self, design, digest: str) -> Optional[FeatureTriple]:
        """The cached triple for ``design`` under ``digest``, or None."""
        entry = self._store.get(self._key(design))
        if entry is not None and entry[0] == digest:
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def store(self, design, digest: str,
              features: FeatureTriple) -> None:
        """Insert (or replace) the design's triple under ``digest``."""
        self._store[self._key(design)] = (digest, features)

    def clear(self) -> None:
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._store)}
