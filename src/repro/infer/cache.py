"""Per-design feature cache keyed by a digest of the model's weights.

The serving pattern is *repeated queries against a fixed model*: the
expensive part of a prediction — the GNN sweep over the whole design
graph and the CNN over every path image — produces the same
``(u, u_n, u_d)`` triple on every call until a parameter changes.
:class:`FeatureCache` memoises that triple per design, keyed by
:func:`weight_digest`, a stable hash over **every** parameter tensor of
the model.  Any weight update — an optimizer step, ``load_state_dict``,
an ablation preset writing ``.data`` directly — changes the digest, so
stale features can never be served; no explicit invalidation hook is
needed (or trusted).

The digest walks *all* tensor attributes, not just trainable ones:
ablations freeze parameters by flipping ``requires_grad`` off, and a
later ``.data`` write to a frozen tensor must still invalidate.
Digesting the full parameter set costs one pass over ~10^5 floats
(tens of microseconds) — noise next to the graph sweep it saves.

Both :class:`FeatureCache` and :class:`BoundedLRU` are thread-safe:
the resident server (`repro.serve`) hits them from every handler
thread, where unguarded dict writes and bare ``hits += 1`` counters
are lost-update races.  Every public method takes the instance lock;
entry bounds evict least-recently-used so a long-lived process serving
an open-ended design population cannot grow without limit.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterator, Optional, Tuple

import numpy as np

from ..nn import Module, Tensor

__all__ = ["BoundedLRU", "FeatureCache", "named_tensors", "weight_digest"]

#: Cached value: ``(u, u_n, u_d)`` numpy arrays over a design's full
#: endpoint set, detached from any autograd graph.
FeatureTriple = Tuple[np.ndarray, np.ndarray, np.ndarray]


def named_tensors(module: Module, prefix: str = ""
                  ) -> Iterator[Tuple[str, Tensor]]:
    """Yield every tensor attribute of the module tree, frozen or not.

    Like :meth:`Module.named_parameters` but without the
    ``requires_grad`` filter, so frozen (ablation-pinned) tensors are
    still part of the digest and of saved checkpoints.
    """
    for name, value in vars(module).items():
        full = f"{prefix}{name}"
        if isinstance(value, Tensor):
            yield full, value
        elif isinstance(value, Module):
            yield from named_tensors(value, prefix=f"{full}.")
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                if isinstance(item, Module):
                    yield from named_tensors(item, prefix=f"{full}.{i}.")
                elif isinstance(item, Tensor):
                    yield f"{full}.{i}", item


def weight_digest(model: Module) -> str:
    """Stable hex digest of every tensor in the module tree.

    Covers names, shapes and raw float64 bytes, so any in-place or
    wholesale parameter change produces a different digest.
    """
    h = hashlib.blake2b(digest_size=16)
    for name, tensor in named_tensors(model):
        h.update(name.encode("utf-8"))
        data = np.ascontiguousarray(tensor.data)
        h.update(str(data.shape).encode("ascii"))
        h.update(data.tobytes())
    return h.hexdigest()


class BoundedLRU:
    """Thread-safe mapping with least-recently-used eviction.

    The inference engine memoises weight-independent per-design /
    per-design-set structures (im2col columns, fused batch graphs) in
    instances of this: in a resident server every distinct request mix
    would otherwise pin a full union-graph batch forever.  ``get``
    refreshes recency; ``put`` evicts the coldest entries past
    ``max_entries`` (None = unbounded) and counts them in
    ``evictions``.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.max_entries = max_entries
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while self.max_entries is not None and \
                    len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._data),
                    "evictions": self.evictions,
                    "max_entries": self.max_entries}


class FeatureCache:
    """Per-design ``(u, u_n, u_d)`` store, one entry per design.

    An entry is valid only for the digest it was stored under; a lookup
    with a different digest misses (and the subsequent store replaces
    the stale entry, so memory stays bounded at one triple per design —
    plus, optionally, an LRU bound on the design population itself via
    ``max_entries``).

    Thread-safe: lookup/store and the hit/miss counters are guarded by
    one lock, so concurrent server threads never lose counter updates
    or observe a half-written entry.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.max_entries = max_entries
        self._store: "OrderedDict[Tuple[str, str, str], Tuple[str, FeatureTriple]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(design) -> Tuple[str, str, str]:
        # (name, node) alone is ambiguous: the same benchmark built
        # against differently-scaled libraries is a different design,
        # so the key includes a digest of the actual model inputs.
        return (design.name, design.node, design.content_digest())

    def lookup(self, design, digest: str) -> Optional[FeatureTriple]:
        """The cached triple for ``design`` under ``digest``, or None."""
        with self._lock:
            entry = self._store.get(self._key(design))
            if entry is not None and entry[0] == digest:
                self.hits += 1
                self._store.move_to_end(self._key(design))
                return entry[1]
            self.misses += 1
            return None

    def store(self, design, digest: str,
              features: FeatureTriple) -> None:
        """Insert (or replace) the design's triple under ``digest``."""
        with self._lock:
            key = self._key(design)
            self._store[key] = (digest, features)
            self._store.move_to_end(key)
            while self.max_entries is not None and \
                    len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._store),
                    "evictions": self.evictions}
