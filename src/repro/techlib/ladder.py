"""Parameterized chains of synthetic technology nodes.

The paper transfers between exactly two nodes; :class:`NodeLadder`
generalizes the library layer into a node *generator*: an ordered chain
of K nodes (e.g. 130 -> 45 -> 28 -> 14 -> 7 nm), each with its own
delay/cap/area scales.  The 130nm and 7nm endpoints are the real anchor
libraries (bit-identical to :func:`~repro.techlib.make_sky130_library`
and :func:`~repro.techlib.make_asap7_library`, so a ``[130, 7]`` ladder
degrades exactly to the paper's two-node setting); every other size is
synthesized by log-space interpolation
(:func:`~repro.techlib.make_interpolated_node`), optionally with a
deterministically perturbed gate mix so intermediate nodes differ
structurally, not just electrically.

A ladder is fully described by its :attr:`~NodeLadder.spec` — a small
JSON/pickle-friendly dict — so flow worker processes can rebuild the
exact same libraries from the spec instead of shipping them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .asap7 import make_asap7_library
from .library import TechLibrary, library_digest, merged_cell_vocabulary
from .scaling import make_interpolated_node, nm_text
from .sky130 import make_sky130_library

__all__ = ["DEFAULT_LADDER_NMS", "NodeLadder", "label_to_nm",
           "node_label"]

#: The sizes at which the *real* anchor libraries are used verbatim.
_ANCHOR_BUILDERS = {130.0: make_sky130_library, 7.0: make_asap7_library}

#: Functions an interpolated node always keeps under gate-mix
#: perturbation: the mapper's rewrite base (it cannot terminate without
#: them) plus BUF, which the flow inserts for fanout repair.
_PROTECTED_FUNCTIONS = frozenset(
    {"INV", "BUF", "NAND2", "NOR2", "DFF"})

#: A reasonable 5-node study chain (the DESIGN.md §15 example).
DEFAULT_LADDER_NMS = (130.0, 45.0, 28.0, 14.0, 7.0)


def node_label(node_nm: float) -> str:
    """The node string designs/trainers key on: ``45.0 -> "45nm"``.

    Anchors keep the labels the whole two-node pipeline already uses
    (``"130nm"`` / ``"7nm"``); fractional sizes stay collision-free
    (``45.2 -> "45p2nm"``).
    """
    return f"{nm_text(node_nm)}nm"


def label_to_nm(label: str) -> float:
    """Inverse of :func:`node_label` (``"45p2nm" -> 45.2``)."""
    text = label[:-2] if label.endswith("nm") else label
    try:
        return float(text.replace("p", ".").replace("m", "-"))
    except ValueError:
        raise ValueError(f"not a node label: {label!r}") from None


class NodeLadder:
    """An ordered chain of technology nodes, largest to smallest.

    Parameters
    ----------
    node_nms:
        Feature sizes in nm, at least two, all distinct, each within
        ``[7, 130]``.  Sorted descending: source nodes first, the
        smallest node — the conventional transfer target — last.
    perturb_gate_mix:
        When True, each *interpolated* node drops a seeded subset of
        its non-essential logic functions, so intermediate nodes have
        genuinely different gate mixes (the anchors are never touched).
    seed:
        Seed of the gate-mix perturbation; the drop pattern is a pure
        function of ``(seed, node_nm)``.
    """

    def __init__(self, node_nms: Sequence[float] = DEFAULT_LADDER_NMS,
                 perturb_gate_mix: bool = False, seed: int = 0) -> None:
        nms = sorted((float(nm) for nm in node_nms), reverse=True)
        if len(nms) < 2:
            raise ValueError("a ladder needs at least two nodes")
        if len(set(nms)) != len(nms):
            raise ValueError(f"duplicate node sizes in {nms}")
        for nm in nms:
            if nm not in _ANCHOR_BUILDERS and not 7.0 < nm < 130.0:
                raise ValueError(
                    f"node size {nm} nm outside the supported [7, 130] "
                    "range")
        labels = [node_label(nm) for nm in nms]
        if len(set(labels)) != len(labels):
            raise ValueError(f"node labels collide for sizes {nms}")
        self.node_nms: List[float] = nms
        self.perturb_gate_mix = bool(perturb_gate_mix)
        self.seed = int(seed)
        self._libraries: Optional[Dict[str, TechLibrary]] = None

    # -- identity ------------------------------------------------------
    @property
    def spec(self) -> Dict[str, object]:
        """Serializable description; rebuild with :meth:`from_spec`."""
        return {"node_nms": list(self.node_nms),
                "perturb_gate_mix": self.perturb_gate_mix,
                "seed": self.seed}

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "NodeLadder":
        return cls(node_nms=spec["node_nms"],
                   perturb_gate_mix=bool(spec["perturb_gate_mix"]),
                   seed=int(spec["seed"]))

    def __eq__(self, other) -> bool:
        return isinstance(other, NodeLadder) and self.spec == other.spec

    def __repr__(self) -> str:
        sizes = "->".join(nm_text(nm) for nm in self.node_nms)
        return f"NodeLadder({sizes}nm)"

    # -- structure -----------------------------------------------------
    @property
    def node_labels(self) -> List[str]:
        """Node strings in ladder order (sources first, target last)."""
        return [node_label(nm) for nm in self.node_nms]

    @property
    def target_label(self) -> str:
        """The smallest node — the conventional transfer target."""
        return node_label(self.node_nms[-1])

    @property
    def source_labels(self) -> List[str]:
        return self.node_labels[:-1]

    # -- libraries -----------------------------------------------------
    def _build_one(self, nm: float) -> TechLibrary:
        anchor = _ANCHOR_BUILDERS.get(nm)
        if anchor is not None:
            return anchor()
        library = make_interpolated_node(nm)
        if self.perturb_gate_mix:
            library = self._perturb(library, nm)
        return library

    def _perturb(self, library: TechLibrary, nm: float) -> TechLibrary:
        """Drop a seeded subset of the node's optional functions."""
        optional = sorted(set(library.functions) - _PROTECTED_FUNCTIONS)
        rng = np.random.default_rng(
            [self.seed, int(round(nm * 1000))])
        keep_mask = rng.random(len(optional)) >= 0.4
        dropped = {f for f, keep in zip(optional, keep_mask) if not keep}
        cells = [c for c in library.cells.values()
                 if c.function not in dropped]
        return TechLibrary(
            name=library.name, node_nm=library.node_nm, cells=cells,
            wire=library.wire, site=library.site,
            default_clock_period=library.default_clock_period,
            primary_input_slew=library.primary_input_slew,
        )

    def libraries(self) -> Dict[str, TechLibrary]:
        """Node label -> library, in ladder order (built once, cached)."""
        if self._libraries is None:
            self._libraries = {node_label(nm): self._build_one(nm)
                               for nm in self.node_nms}
        return self._libraries

    def vocabulary(self) -> List[str]:
        """Merged cell-name vocabulary across every node of the chain."""
        return merged_cell_vocabulary(self.libraries().values())

    def digests(self) -> Dict[str, str]:
        """Node label -> content digest of that node's library."""
        return {label: library_digest(lib)
                for label, lib in self.libraries().items()}

    def describe(self) -> List[Dict[str, object]]:
        """Per-node manifest records: label, nm, cell count, digest."""
        return [
            {"label": label, "nm": float(nm),
             "num_cells": len(lib), "digest": library_digest(lib)}
            for (label, lib), nm in zip(self.libraries().items(),
                                        self.node_nms)
        ]
