"""Synthetic technology libraries (PDK substitute).

Two anchor nodes mirror the paper's setting:

- :func:`make_sky130_library` — the 130nm source node (abundant data)
- :func:`make_asap7_library` — the 7nm target node (scarce data)

Beyond the paper, :class:`NodeLadder` generates ordered chains of
intermediate nodes between the anchors (via
:func:`make_interpolated_node` / :func:`scale_library`) for K-node
transfer studies.
"""

from .asap7 import make_asap7_library
from .cell import StandardCell, TimingArc, TimingTable
from .ladder import DEFAULT_LADDER_NMS, NodeLadder, label_to_nm, node_label
from .library import (
    GENERIC_FUNCTIONS,
    TechLibrary,
    WireModel,
    build_cell,
    library_digest,
    merged_cell_vocabulary,
)
from .scaling import make_interpolated_node, scale_library
from .sky130 import make_sky130_library

__all__ = [
    "DEFAULT_LADDER_NMS",
    "GENERIC_FUNCTIONS",
    "NodeLadder",
    "StandardCell",
    "TechLibrary",
    "TimingArc",
    "TimingTable",
    "WireModel",
    "build_cell",
    "label_to_nm",
    "library_digest",
    "make_asap7_library",
    "make_interpolated_node",
    "make_sky130_library",
    "node_label",
    "scale_library",
    "merged_cell_vocabulary",
]
