"""Synthetic technology libraries (PDK substitute).

Two nodes are provided, mirroring the paper's setting:

- :func:`make_sky130_library` — the 130nm source node (abundant data)
- :func:`make_asap7_library` — the 7nm target node (scarce data)
"""

from .asap7 import make_asap7_library
from .cell import StandardCell, TimingArc, TimingTable
from .library import (
    GENERIC_FUNCTIONS,
    TechLibrary,
    WireModel,
    build_cell,
    merged_cell_vocabulary,
)
from .scaling import make_interpolated_node, scale_library
from .sky130 import make_sky130_library

__all__ = [
    "GENERIC_FUNCTIONS",
    "StandardCell",
    "TechLibrary",
    "TimingArc",
    "TimingTable",
    "WireModel",
    "build_cell",
    "make_asap7_library",
    "make_interpolated_node",
    "make_sky130_library",
    "scale_library",
    "merged_cell_vocabulary",
]
