"""Derived technology libraries by parameter scaling.

Real PDK generations shrink geometrically; this module synthesises
*intermediate* nodes by log-space interpolation between the two anchor
libraries (130nm and 7nm), or scales a single library by explicit
factors.  Useful for multi-node transfer studies beyond the paper's
two-node setting (e.g. 130nm -> 45nm -> 7nm chains).
"""

from __future__ import annotations

import math
from typing import Optional

from .asap7 import make_asap7_library
from .cell import StandardCell, TimingArc, TimingTable
from .library import TechLibrary, WireModel
from .sky130 import make_sky130_library


def _common_cell_prefix(cells) -> Optional[str]:
    """The shared ``<prefix>_`` of the cells' names, or None if mixed."""
    prefixes = {cell.name.split("_", 1)[0] for cell in cells}
    return prefixes.pop() if len(prefixes) == 1 else None


def nm_text(node_nm: float) -> str:
    """Collision-free, filename-safe text for a node size in nm.

    Uses the shortest round-trip ``repr`` of the float (injective per
    value), drops a trailing ``.0`` and spells the decimal point ``p``:
    ``130.0 -> "130"``, ``45.2 -> "45p2"``, ``45.7 -> "45p7"``.
    """
    text = repr(float(node_nm))
    if text.endswith(".0"):
        text = text[:-2]
    return text.replace(".", "p").replace("-", "m")


def scale_library(library: TechLibrary, name: str, node_nm: float,
                  delay_factor: float, cap_factor: float,
                  area_factor: float,
                  cell_prefix: Optional[str] = None) -> TechLibrary:
    """Produce a copy of ``library`` with scaled electrical parameters.

    Delay tables (values *and* slew axes), pin capacitances (and load
    axes), areas, leakage, sequential constraints, wire parasitics, site
    geometry, and the node-level defaults all scale coherently, so the
    derived library is immediately usable by the whole flow.

    Cells are renamed onto ``cell_prefix`` (default: the first ``_``
    segment of ``name``) by swapping the source cells' own common name
    prefix — e.g. ``sky_inv_x1 -> synth45_inv_x1``.  Derived cell names
    must not alias the source's: the merged cross-node gate vocabulary
    (and every name-keyed cache) tells cells apart by name alone.
    """
    if min(delay_factor, cap_factor, area_factor) <= 0:
        raise ValueError("scale factors must be positive")
    src_prefix = _common_cell_prefix(library.cells.values())
    dst_prefix = cell_prefix if cell_prefix is not None \
        else name.split("_")[0]
    if dst_prefix == src_prefix:
        raise ValueError(
            f"derived cell prefix {dst_prefix!r} equals the source "
            f"library's; the scaled cells would alias {library.name}'s "
            "cell names — pass a distinct name or cell_prefix"
        )

    def rename(cell_name: str) -> str:
        if src_prefix is not None \
                and cell_name.startswith(src_prefix + "_"):
            return dst_prefix + cell_name[len(src_prefix):]
        return f"{dst_prefix}_{cell_name}"

    def scale_table(table: TimingTable) -> TimingTable:
        return TimingTable(
            slew_axis=table.slew_axis * delay_factor,
            load_axis=table.load_axis * cap_factor,
            values=table.values * delay_factor,
        )

    linear = math.sqrt(area_factor)
    cells = []
    for cell in library.cells.values():
        arcs = [
            TimingArc(a.input_pin, a.output_pin,
                      scale_table(a.delay), scale_table(a.output_slew))
            for a in cell.arcs
        ]
        cells.append(StandardCell(
            name=rename(cell.name),
            function=cell.function,
            drive_strength=cell.drive_strength,
            input_pins=list(cell.input_pins),
            output_pin=cell.output_pin,
            pin_caps={p: c * cap_factor
                      for p, c in cell.pin_caps.items()},
            arcs=arcs,
            area=cell.area * area_factor,
            leakage=cell.leakage * area_factor,
            is_sequential=cell.is_sequential,
            setup_time=cell.setup_time * delay_factor,
            clk_to_q=cell.clk_to_q * delay_factor,
        ))
    return TechLibrary(
        name=name,
        node_nm=node_nm,
        cells=cells,
        wire=WireModel(
            res_per_um=library.wire.res_per_um / linear,
            cap_per_um=library.wire.cap_per_um * linear,
        ),
        site=(library.site[0] * linear, library.site[1] * linear),
        default_clock_period=library.default_clock_period * delay_factor,
        primary_input_slew=library.primary_input_slew * delay_factor,
    )


def make_interpolated_node(node_nm: float,
                           name: Optional[str] = None) -> TechLibrary:
    """Synthesise an intermediate node between 7nm and 130nm.

    Interpolates delay/cap/area factors in log space against the 130nm
    anchor, using the two real anchors to set the scaling exponents.
    The derived library keeps the 130nm *cell mix* (it descends from
    sky130), which is realistic: older-flavoured libraries persist for
    several generations.

    The anchor sizes themselves are rejected: a "synthetic" 130nm or
    7nm node would silently duplicate an anchor under a different name.
    Use :func:`~repro.techlib.make_sky130_library` /
    :func:`~repro.techlib.make_asap7_library` for the anchors.
    """
    if not 7.0 < node_nm < 130.0:
        raise ValueError(
            f"interpolation range is the open interval (7, 130) nm, "
            f"got {node_nm}; the endpoints are the anchor libraries "
            "(make_sky130_library / make_asap7_library)"
        )
    sky = make_sky130_library()
    asap = make_asap7_library()

    # Position of the target node between the anchors, in log-nm space.
    t = (math.log(130.0) - math.log(node_nm)) \
        / (math.log(130.0) - math.log(7.0))

    def anchor_ratio(get) -> float:
        return get(asap) / get(sky)

    delay_ratio = anchor_ratio(
        lambda lib: lib.pick("INV", 1.0).arcs[0].delay.values.mean()
    )
    cap_ratio = anchor_ratio(lambda lib: lib.pick("INV", 1.0)
                             .input_cap("A"))
    area_ratio = anchor_ratio(lambda lib: lib.pick("INV", 1.0).area)

    name = name or f"synth{nm_text(node_nm)}"
    return scale_library(
        sky, name=name, node_nm=node_nm,
        delay_factor=delay_ratio ** t,
        cap_factor=cap_ratio ** t,
        area_factor=area_ratio ** t,
    )
