"""Derived technology libraries by parameter scaling.

Real PDK generations shrink geometrically; this module synthesises
*intermediate* nodes by log-space interpolation between the two anchor
libraries (130nm and 7nm), or scales a single library by explicit
factors.  Useful for multi-node transfer studies beyond the paper's
two-node setting (e.g. 130nm -> 45nm -> 7nm chains).
"""

from __future__ import annotations

import math
from typing import Optional

from .asap7 import make_asap7_library
from .cell import StandardCell, TimingArc, TimingTable
from .library import TechLibrary, WireModel
from .sky130 import make_sky130_library


def scale_library(library: TechLibrary, name: str, node_nm: float,
                  delay_factor: float, cap_factor: float,
                  area_factor: float) -> TechLibrary:
    """Produce a copy of ``library`` with scaled electrical parameters.

    Delay tables (values *and* slew axes), pin capacitances (and load
    axes), areas, leakage, sequential constraints, wire parasitics, site
    geometry, and the node-level defaults all scale coherently, so the
    derived library is immediately usable by the whole flow.
    """
    if min(delay_factor, cap_factor, area_factor) <= 0:
        raise ValueError("scale factors must be positive")

    def scale_table(table: TimingTable) -> TimingTable:
        return TimingTable(
            slew_axis=table.slew_axis * delay_factor,
            load_axis=table.load_axis * cap_factor,
            values=table.values * delay_factor,
        )

    linear = math.sqrt(area_factor)
    cells = []
    for cell in library.cells.values():
        arcs = [
            TimingArc(a.input_pin, a.output_pin,
                      scale_table(a.delay), scale_table(a.output_slew))
            for a in cell.arcs
        ]
        cells.append(StandardCell(
            name=cell.name.replace(library.name.split("_")[0],
                                   name.split("_")[0], 1),
            function=cell.function,
            drive_strength=cell.drive_strength,
            input_pins=list(cell.input_pins),
            output_pin=cell.output_pin,
            pin_caps={p: c * cap_factor
                      for p, c in cell.pin_caps.items()},
            arcs=arcs,
            area=cell.area * area_factor,
            leakage=cell.leakage * area_factor,
            is_sequential=cell.is_sequential,
            setup_time=cell.setup_time * delay_factor,
            clk_to_q=cell.clk_to_q * delay_factor,
        ))
    return TechLibrary(
        name=name,
        node_nm=node_nm,
        cells=cells,
        wire=WireModel(
            res_per_um=library.wire.res_per_um / linear,
            cap_per_um=library.wire.cap_per_um * linear,
        ),
        site=(library.site[0] * linear, library.site[1] * linear),
        default_clock_period=library.default_clock_period * delay_factor,
        primary_input_slew=library.primary_input_slew * delay_factor,
    )


def make_interpolated_node(node_nm: float,
                           name: Optional[str] = None) -> TechLibrary:
    """Synthesise an intermediate node between 7nm and 130nm.

    Interpolates delay/cap/area factors in log space against the 130nm
    anchor, using the two real anchors to set the scaling exponents.
    The derived library keeps the 130nm *cell mix* (it descends from
    sky130), which is realistic: older-flavoured libraries persist for
    several generations.
    """
    if not 7.0 <= node_nm <= 130.0:
        raise ValueError("interpolation range is [7, 130] nm")
    sky = make_sky130_library()
    asap = make_asap7_library()

    # Position of the target node between the anchors, in log-nm space.
    t = (math.log(130.0) - math.log(node_nm)) \
        / (math.log(130.0) - math.log(7.0))

    def anchor_ratio(get) -> float:
        return get(asap) / get(sky)

    delay_ratio = anchor_ratio(
        lambda lib: lib.pick("INV", 1.0).arcs[0].delay.values.mean()
    )
    cap_ratio = anchor_ratio(lambda lib: lib.pick("INV", 1.0)
                             .input_cap("A"))
    area_ratio = anchor_ratio(lambda lib: lib.pick("INV", 1.0).area)

    name = name or f"synth{int(node_nm)}"
    return scale_library(
        sky, name=name, node_nm=node_nm,
        delay_factor=delay_ratio ** t,
        cap_factor=cap_ratio ** t,
        area_factor=area_ratio ** t,
    )
