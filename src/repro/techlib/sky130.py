"""Synthetic 130nm library (SkyWater-flavoured).

This is the *source preceding node* of the paper.  The electrical constants
are first-order realistic for a 130nm process: gate delays of tens to
hundreds of picoseconds, input capacitances of a few femtofarads, and a
~10 ns-class clock.  The exact values are synthetic — the real SkyWater
PDK is not redistributed here — but they are chosen so that the arrival
time distribution sits roughly an order of magnitude above the 7nm node's,
reproducing the distribution gap in Figure 6 of the paper.
"""

from __future__ import annotations

from .library import TechLibrary, WireModel, build_cell

#: NLDM grid: input slew breakpoints (ns) and load breakpoints (pF).
SLEW_AXIS = (0.02, 0.08, 0.20, 0.45, 0.90, 1.80, 3.60)
LOAD_AXIS = (0.001, 0.005, 0.010, 0.020, 0.050, 0.100, 0.200)

#: (function, n_inputs, intrinsic ns, unit drive res kOhm, input cap pF,
#:  area um^2, leakage)
#: Delay constants are ~4x a typical 130nm gate so that the node's
#: arrival-time distribution is cleanly separated from the 7nm one, as
#: in the paper's Figure 6 (their 130nm ATs sit an order of magnitude
#: above 7nm with little overlap).
_COMB_SPECS = (
    ("INV", 1, 0.120, 7.2, 0.0035, 3.75, 0.8),
    ("BUF", 1, 0.220, 6.0, 0.0040, 5.00, 1.0),
    ("NAND2", 2, 0.180, 8.8, 0.0045, 5.00, 1.2),
    ("NOR2", 2, 0.240, 11.2, 0.0048, 5.00, 1.2),
    ("AND2", 2, 0.300, 8.0, 0.0046, 6.25, 1.5),
    ("OR2", 2, 0.340, 8.4, 0.0047, 6.25, 1.5),
    ("XOR2", 2, 0.440, 10.4, 0.0070, 8.75, 2.2),
    ("MUX2", 3, 0.420, 9.6, 0.0060, 10.00, 2.4),
    ("AOI21", 3, 0.320, 10.8, 0.0052, 7.50, 1.8),
    ("OAI21", 3, 0.312, 10.4, 0.0052, 7.50, 1.8),
)

_DRIVES = (1.0, 2.0, 4.0)


def _cells() -> list:
    cells = []
    for function, n_in, intrinsic, res, cap, area, leak in _COMB_SPECS:
        for drive in _DRIVES:
            name = f"sky_{function.lower()}_x{int(drive)}"
            cells.append(build_cell(
                name=name, function=function, drive=drive, n_inputs=n_in,
                intrinsic=intrinsic, unit_drive_res=res, input_cap=cap,
                slew_axis=SLEW_AXIS, load_axis=LOAD_AXIS, area=area,
                leakage=leak,
            ))
    for drive in (1.0, 2.0):
        name = f"sky_dff_x{int(drive)}"
        cells.append(build_cell(
            name=name, function="DFF", drive=drive, n_inputs=2,
            intrinsic=0.0, unit_drive_res=8.0, input_cap=0.0050,
            slew_axis=SLEW_AXIS, load_axis=LOAD_AXIS, area=20.0,
            leakage=3.0, is_sequential=True, setup_time=0.50, clk_to_q=1.00,
        ))
    return cells


def make_sky130_library() -> TechLibrary:
    """Build the synthetic 130nm library."""
    return TechLibrary(
        name="sky130_synth",
        node_nm=130.0,
        cells=_cells(),
        wire=WireModel(res_per_um=0.0008, cap_per_um=0.00020),
        site=(0.46, 2.72),
        default_clock_period=25.0,
        primary_input_slew=0.15,
    )
