"""Standard-cell timing models.

A cell is characterised the way a liberty (``.lib``) file would: per
input→output *timing arc*, a non-linear delay model (NLDM) lookup table
gives the arc delay and output slew as a function of input slew and output
load capacitance.  We implement the tables with bilinear interpolation and
clamped extrapolation, which is what signoff STA engines do.

Units used throughout the reproduction:

- time: nanoseconds (ns)
- capacitance: picofarads (pF)
- resistance: kiloohms (kOhm), so R*C is ns
- distance: micrometres (um)
- area: square micrometres (um^2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class TimingTable:
    """A 2D NLDM lookup table ``value(input_slew, load_cap)``.

    Parameters
    ----------
    slew_axis:
        Monotonically increasing input-slew breakpoints (ns).
    load_axis:
        Monotonically increasing load-capacitance breakpoints (pF).
    values:
        Table of shape ``(len(slew_axis), len(load_axis))``.
    """

    def __init__(self, slew_axis: Sequence[float], load_axis: Sequence[float],
                 values: np.ndarray) -> None:
        self.slew_axis = np.asarray(slew_axis, dtype=float)
        self.load_axis = np.asarray(load_axis, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.values.shape != (self.slew_axis.size, self.load_axis.size):
            raise ValueError(
                f"table shape {self.values.shape} does not match axes "
                f"({self.slew_axis.size}, {self.load_axis.size})"
            )
        if np.any(np.diff(self.slew_axis) <= 0) or np.any(np.diff(self.load_axis) <= 0):
            raise ValueError("table axes must be strictly increasing")

    def lookup(self, slew, load):
        """Bilinear interpolation; inputs outside the grid are clamped.

        Accepts scalars or same-shaped arrays and broadcasts.
        """
        slew = np.clip(np.asarray(slew, dtype=float),
                       self.slew_axis[0], self.slew_axis[-1])
        load = np.clip(np.asarray(load, dtype=float),
                       self.load_axis[0], self.load_axis[-1])

        i = np.clip(np.searchsorted(self.slew_axis, slew) - 1, 0,
                    self.slew_axis.size - 2)
        j = np.clip(np.searchsorted(self.load_axis, load) - 1, 0,
                    self.load_axis.size - 2)
        s0, s1 = self.slew_axis[i], self.slew_axis[i + 1]
        l0, l1 = self.load_axis[j], self.load_axis[j + 1]
        ws = (slew - s0) / (s1 - s0)
        wl = (load - l0) / (l1 - l0)
        v00 = self.values[i, j]
        v01 = self.values[i, j + 1]
        v10 = self.values[i + 1, j]
        v11 = self.values[i + 1, j + 1]
        out = (v00 * (1 - ws) * (1 - wl) + v01 * (1 - ws) * wl
               + v10 * ws * (1 - wl) + v11 * ws * wl)
        return float(out) if np.isscalar(out) or out.ndim == 0 else out

    @classmethod
    def from_linear_model(cls, slew_axis: Sequence[float],
                          load_axis: Sequence[float], intrinsic: float,
                          drive_res: float, slew_sensitivity: float,
                          curvature: float = 0.0) -> "TimingTable":
        """Build a table from the classic linear delay model.

        ``value = intrinsic + drive_res * load + slew_sensitivity * slew
        + curvature * slew * load`` evaluated at each grid point.  The
        curvature term adds the slew-load interaction real NLDM tables show.
        """
        s = np.asarray(slew_axis, dtype=float)[:, None]
        l = np.asarray(load_axis, dtype=float)[None, :]
        values = intrinsic + drive_res * l + slew_sensitivity * s \
            + curvature * s * l
        return cls(slew_axis, load_axis, values)


@dataclass
class TimingArc:
    """A combinational input→output arc of a standard cell."""

    input_pin: str
    output_pin: str
    delay: TimingTable
    output_slew: TimingTable


@dataclass
class StandardCell:
    """A standard cell with liberty-like data.

    Attributes
    ----------
    name:
        Library-unique cell name (e.g. ``sky_nand2_x2``).
    function:
        Generic logical function implemented (e.g. ``NAND2``, ``DFF``).
    drive_strength:
        Relative drive (1.0 = unit drive); larger drives lower delay but
        larger input capacitance and area.
    input_pins / output_pin:
        Pin names.  Sequential cells use ``D``/``CK`` inputs and ``Q``.
    pin_caps:
        Input-pin capacitance in pF, keyed by pin name.
    arcs:
        Combinational timing arcs.  For flops these are the CK→Q arcs.
    area:
        Cell footprint in um^2 (used by placement/density maps).
    leakage:
        Leakage power in arbitrary units (reported in library stats).
    is_sequential:
        True for flip-flops; they cut timing paths.
    setup_time / clk_to_q:
        Sequential constraints, 0 for combinational cells.
    """

    name: str
    function: str
    drive_strength: float
    input_pins: List[str]
    output_pin: str
    pin_caps: Dict[str, float]
    arcs: List[TimingArc]
    area: float
    leakage: float = 0.0
    is_sequential: bool = False
    setup_time: float = 0.0
    clk_to_q: float = 0.0

    def arc_for(self, input_pin: str) -> Optional[TimingArc]:
        """Return the timing arc from ``input_pin``, or None."""
        for arc in self.arcs:
            if arc.input_pin == input_pin:
                return arc
        return None

    def input_cap(self, pin: str) -> float:
        """Input capacitance of ``pin`` in pF."""
        return self.pin_caps[pin]

    @property
    def max_delay_estimate(self) -> float:
        """Worst arc delay at the table's largest slew and load (screening)."""
        if not self.arcs:
            return 0.0
        return max(float(arc.delay.values.max()) for arc in self.arcs)

    def __repr__(self) -> str:
        kind = "seq" if self.is_sequential else "comb"
        return (f"StandardCell({self.name}, fn={self.function}, "
                f"drive={self.drive_strength}, {kind})")
