"""Synthetic 7nm library (ASAP7-flavoured).

This is the *target advanced node* of the paper.  Gate delays are a few
picoseconds, input capacitances are sub-femtofarad, wires are relatively
more resistive, and the cell mix differs from the 130nm library (3-input
NAND/NOR and XNOR exist; discrete AND/OR do not and must be decomposed by
the mapper).  Together with the disjoint cell-name vocabulary this creates
exactly the node-dependent distribution shift the paper's transfer
learning framework has to bridge.
"""

from __future__ import annotations

from .library import TechLibrary, WireModel, build_cell

#: NLDM grid: input slew breakpoints (ns) and load breakpoints (pF).
SLEW_AXIS = (0.002, 0.005, 0.010, 0.020, 0.050, 0.100, 0.200)
LOAD_AXIS = (0.0001, 0.0003, 0.0006, 0.0012, 0.0025, 0.0050, 0.0100)

#: (function, n_inputs, intrinsic ns, unit drive res kOhm, input cap pF,
#:  area um^2, leakage)
_COMB_SPECS = (
    ("INV", 1, 0.0028, 3.5, 0.00045, 0.054, 0.02),
    ("BUF", 1, 0.0050, 3.0, 0.00050, 0.073, 0.03),
    ("NAND2", 2, 0.0042, 4.2, 0.00055, 0.073, 0.03),
    ("NAND3", 3, 0.0055, 5.0, 0.00060, 0.092, 0.04),
    ("NOR2", 2, 0.0050, 4.8, 0.00058, 0.073, 0.03),
    ("NOR3", 3, 0.0068, 5.6, 0.00062, 0.092, 0.04),
    ("XOR2", 2, 0.0095, 4.6, 0.00085, 0.128, 0.06),
    ("XNOR2", 2, 0.0092, 4.6, 0.00085, 0.128, 0.06),
    ("MUX2", 3, 0.0090, 4.4, 0.00075, 0.146, 0.07),
    ("AOI21", 3, 0.0068, 4.9, 0.00062, 0.110, 0.05),
    ("OAI21", 3, 0.0066, 4.8, 0.00062, 0.110, 0.05),
)

_DRIVES = (1.0, 2.0, 3.0, 6.0)


def _cells() -> list:
    cells = []
    for function, n_in, intrinsic, res, cap, area, leak in _COMB_SPECS:
        for drive in _DRIVES:
            name = f"asap_{function.lower()}_x{int(drive)}"
            cells.append(build_cell(
                name=name, function=function, drive=drive, n_inputs=n_in,
                intrinsic=intrinsic, unit_drive_res=res, input_cap=cap,
                slew_axis=SLEW_AXIS, load_axis=LOAD_AXIS, area=area,
                leakage=leak,
            ))
    for drive in (1.0, 2.0, 3.0):
        name = f"asap_dff_x{int(drive)}"
        cells.append(build_cell(
            name=name, function="DFF", drive=drive, n_inputs=2,
            intrinsic=0.0, unit_drive_res=4.0, input_cap=0.00065,
            slew_axis=SLEW_AXIS, load_axis=LOAD_AXIS, area=0.270,
            leakage=0.10, is_sequential=True, setup_time=0.010,
            clk_to_q=0.022,
        ))
    return cells


def make_asap7_library() -> TechLibrary:
    """Build the synthetic 7nm library."""
    return TechLibrary(
        name="asap7_synth",
        node_nm=7.0,
        cells=_cells(),
        wire=WireModel(res_per_um=0.030, cap_per_um=0.00016),
        site=(0.054, 0.270),
        default_clock_period=0.80,
        primary_input_slew=0.008,
    )
