"""Technology library: a node's standard cells plus interconnect data."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .cell import StandardCell, TimingArc, TimingTable

#: Generic logic functions a netlist generator may emit.  Tech mapping
#: lowers these onto whatever cells a given library actually provides.
GENERIC_FUNCTIONS = (
    "INV", "BUF", "NAND2", "NAND3", "NOR2", "NOR3", "AND2", "OR2",
    "XOR2", "XNOR2", "MUX2", "AOI21", "OAI21", "DFF",
)


@dataclass
class WireModel:
    """Per-unit-length interconnect parasitics for a metal stack.

    Attributes
    ----------
    res_per_um:
        Wire resistance in kOhm/um.
    cap_per_um:
        Wire capacitance in pF/um.
    """

    res_per_um: float
    cap_per_um: float

    def rc(self, length_um: float) -> Tuple[float, float]:
        """Total (resistance, capacitance) of a wire of given length."""
        return self.res_per_um * length_um, self.cap_per_um * length_um


class TechLibrary:
    """A synthetic PDK: cells, wire model and node-level constants.

    Parameters
    ----------
    name:
        Library identifier, e.g. ``"sky130_synth"``.
    node_nm:
        Feature size in nanometres (130 or 7 here).
    cells:
        The standard cells available at this node.
    wire:
        Per-unit interconnect parasitics.
    site:
        (width, height) of a placement site in um; cell widths are
        multiples of the site width.
    default_clock_period:
        A sensible clock period (ns) for designs at this node; used by the
        flow to derive timing constraints the way Genus estimates do.
    primary_input_slew:
        Transition time (ns) assumed at primary inputs.
    """

    def __init__(self, name: str, node_nm: float,
                 cells: Iterable[StandardCell], wire: WireModel,
                 site: Tuple[float, float], default_clock_period: float,
                 primary_input_slew: float) -> None:
        self.name = name
        self.node_nm = node_nm
        self.cells: Dict[str, StandardCell] = {c.name: c for c in cells}
        self.wire = wire
        self.site = site
        self.default_clock_period = default_clock_period
        self.primary_input_slew = primary_input_slew
        self._by_function: Dict[str, List[StandardCell]] = {}
        for cell in self.cells.values():
            self._by_function.setdefault(cell.function, []).append(cell)
        for group in self._by_function.values():
            group.sort(key=lambda c: c.drive_strength)

    # ------------------------------------------------------------------
    def __contains__(self, cell_name: str) -> bool:
        return cell_name in self.cells

    def __len__(self) -> int:
        return len(self.cells)

    def cell(self, name: str) -> StandardCell:
        """Look up a cell by name."""
        return self.cells[name]

    @property
    def functions(self) -> List[str]:
        """Sorted list of generic functions this library implements."""
        return sorted(self._by_function)

    def cells_for(self, function: str) -> List[StandardCell]:
        """All cells implementing ``function``, sorted by drive strength."""
        return list(self._by_function.get(function, []))

    def pick(self, function: str, drive: float = 1.0) -> StandardCell:
        """Cell implementing ``function`` with drive closest to ``drive``.

        Raises
        ------
        KeyError
            If the library has no cell for ``function``; the tech mapper is
            responsible for decomposing such functions first.
        """
        group = self._by_function.get(function)
        if not group:
            raise KeyError(f"{self.name} has no cell for function {function}")
        return min(group, key=lambda c: abs(c.drive_strength - drive))

    def upsize(self, cell: StandardCell) -> Optional[StandardCell]:
        """Next stronger cell of the same function, or None at the top."""
        group = self._by_function[cell.function]
        idx = group.index(cell)
        return group[idx + 1] if idx + 1 < len(group) else None

    def downsize(self, cell: StandardCell) -> Optional[StandardCell]:
        """Next weaker cell of the same function, or None at the bottom."""
        group = self._by_function[cell.function]
        idx = group.index(cell)
        return group[idx - 1] if idx > 0 else None

    def stats(self) -> Dict[str, float]:
        """Summary statistics used in documentation and tests."""
        areas = [c.area for c in self.cells.values()]
        caps = [cap for c in self.cells.values() for cap in c.pin_caps.values()]
        return {
            "num_cells": float(len(self.cells)),
            "num_functions": float(len(self._by_function)),
            "mean_area": float(np.mean(areas)),
            "mean_input_cap": float(np.mean(caps)),
        }

    def __repr__(self) -> str:
        return (f"TechLibrary({self.name}, {self.node_nm}nm, "
                f"{len(self.cells)} cells)")


def build_cell(name: str, function: str, drive: float, n_inputs: int,
               intrinsic: float, unit_drive_res: float, input_cap: float,
               slew_axis: Sequence[float], load_axis: Sequence[float],
               area: float, leakage: float, slew_gain: float = 0.8,
               is_sequential: bool = False, setup_time: float = 0.0,
               clk_to_q: float = 0.0) -> StandardCell:
    """Construct a :class:`StandardCell` from first-order electrical params.

    The delay table is generated from the linear model
    ``delay = intrinsic/drive_factor + (unit_drive_res/drive) * load +
    0.25 * slew`` and the slew table from a similar expression — the same
    shape real NLDM tables have, with stronger drives having lower
    resistance but proportionally larger input capacitance and area.
    """
    drive_res = unit_drive_res / drive
    intrinsic_d = intrinsic * (0.7 + 0.3 / drive)
    if is_sequential:
        input_names = ["D", "CK"]
        output = "Q"
        arc_inputs = ["CK"]
    else:
        input_names = [chr(ord("A") + i) for i in range(n_inputs)]
        output = "Y"
        arc_inputs = input_names
    arcs = []
    for pin in arc_inputs:
        delay = TimingTable.from_linear_model(
            slew_axis, load_axis,
            intrinsic=intrinsic_d if not is_sequential else clk_to_q,
            drive_res=drive_res, slew_sensitivity=0.25,
            curvature=0.05 * drive_res,
        )
        out_slew = TimingTable.from_linear_model(
            slew_axis, load_axis, intrinsic=0.3 * intrinsic_d,
            drive_res=slew_gain * drive_res, slew_sensitivity=0.1,
            curvature=0.02 * drive_res,
        )
        arcs.append(TimingArc(pin, output, delay, out_slew))
    pin_caps = {pin: input_cap * (0.6 + 0.4 * drive) for pin in input_names}
    return StandardCell(
        name=name, function=function, drive_strength=drive,
        input_pins=input_names, output_pin=output, pin_caps=pin_caps,
        arcs=arcs, area=area * (0.7 + 0.3 * drive), leakage=leakage * drive,
        is_sequential=is_sequential, setup_time=setup_time, clk_to_q=clk_to_q,
    )


def library_digest(library: TechLibrary) -> str:
    """Stable content hash of a library's electrical identity.

    Covers the name, node size, every cell's full electrical content
    (pins, caps, timing tables, area/leakage, sequential constraints),
    the wire model, site geometry and node-level defaults — so two
    same-named but differently-scaled libraries always digest apart.
    Used to content-key flow caches; 16 hex chars, filename-safe.
    """
    h = hashlib.blake2b(digest_size=8)

    def feed(*parts) -> None:
        for part in parts:
            h.update(str(part).encode("utf-8"))
            h.update(b"\x00")

    def feed_array(array: np.ndarray) -> None:
        data = np.ascontiguousarray(array, dtype=np.float64)
        feed(data.shape)
        h.update(data.tobytes())

    feed(library.name, repr(float(library.node_nm)))
    for cell_name in sorted(library.cells):
        cell = library.cells[cell_name]
        feed(cell_name, cell.function, repr(float(cell.drive_strength)),
             list(cell.input_pins), cell.output_pin,
             int(cell.is_sequential), repr(float(cell.area)),
             repr(float(cell.leakage)), repr(float(cell.setup_time)),
             repr(float(cell.clk_to_q)))
        for pin in sorted(cell.pin_caps):
            feed(pin, repr(float(cell.pin_caps[pin])))
        for arc in cell.arcs:
            feed(arc.input_pin, arc.output_pin)
            for table in (arc.delay, arc.output_slew):
                feed_array(table.slew_axis)
                feed_array(table.load_axis)
                feed_array(table.values)
    feed(repr(float(library.wire.res_per_um)),
         repr(float(library.wire.cap_per_um)),
         repr(tuple(float(s) for s in library.site)),
         repr(float(library.default_clock_period)),
         repr(float(library.primary_input_slew)))
    return h.hexdigest()


def merged_cell_vocabulary(libraries: Iterable[TechLibrary]) -> List[str]:
    """Union of all cell names across libraries, sorted.

    The paper one-hot encodes the gate type over the merged gate set of all
    technology nodes; this is that merged set.
    """
    names: set = set()
    for lib in libraries:
        names.update(lib.cells)
    return sorted(names)
